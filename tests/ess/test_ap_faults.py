"""Whole-AP outages: shedding, blocking, routing around, recovery."""

import json

import pytest

from repro.ess import EssConfig, run_ess
from repro.ess.coordinator import ESS_REPORT_SCHEMA
from repro.faults import ApFault


def _config(**overrides):
    base = dict(
        rows=2,
        cols=2,
        seed=3,
        epochs=4,
        epoch_length=20.0,
        new_call_rate=0.15,
        mean_holding=40.0,
        mean_residence=20.0,
        capacity=8,
    )
    base.update(overrides)
    return EssConfig(**base)


def test_ap_fault_validates_against_topology():
    with pytest.raises(ValueError, match="AP the topology lacks"):
        run_ess(_config(ap_faults=(ApFault(ap="ap/9x9"),)))


def test_ap_fault_round_trips_through_config_dict():
    cfg = _config(ap_faults=(ApFault(ap="ap/0x1", start=10.0, end=50.0),))
    assert EssConfig.from_dict(cfg.to_dict()) == cfg


def test_permanent_ap_outage_sheds_blocks_and_conserves():
    dark = "ap/0x1"
    report = run_ess(_config(ap_faults=(ApFault(ap=dark),)))

    # conservation holds with the dropped_ap_down term in the ledger
    assert report["schema"] == ESS_REPORT_SCHEMA
    assert report["passed"], report["conservation"]["violations"]

    cell = report["per_cell"][dark]
    # a dark cell admits nothing and hosts nothing
    assert cell["resident"] == 0
    assert cell["completed"] == 0
    assert cell["blocked_ap_down"] > 0
    assert cell["handoff_in"] == 0
    # roamers toward the dark cell die at backhaul routing (no healthy
    # path ends at a faulted AP), never inside the cell
    totals = report["totals"]
    assert totals["dropped_backhaul"] > 0
    assert totals["dropped_ap_down"] == sum(
        c["handoff_dropped_ap_down"] + c["shed_ap_down"]
        for c in report["per_cell"].values()
    )


def test_windowed_outage_sheds_then_recovers():
    dark = "ap/1x0"
    fault = ApFault(ap=dark, start=20.0, end=60.0)
    report = run_ess(_config(ap_faults=(fault,)))

    assert report["passed"], report["conservation"]["violations"]
    cell = report["per_cell"][dark]
    # calls admitted before the outage are shed at the fault boundary...
    assert cell["shed_ap_down"] + cell["blocked_ap_down"] > 0
    # ...and the cell serves calls again after recovery
    assert cell["resident"] + cell["completed"] > 0


def test_faulted_ap_is_avoided_by_backhaul_routing():
    # 2x2 grid: with ap/1x1 dark, the ap/0x0 <-> ap/0x1 pair keeps its
    # direct path but loses the disjoint detour through row 1
    report = run_ess(_config(ap_faults=(ApFault(ap="ap/1x1"),)))
    assert report["passed"]
    assert report["backhaul"]["faulted_aps"] == ["ap/1x1"]


def test_ap_fault_report_is_deterministic():
    cfg = _config(ap_faults=(ApFault(ap="ap/0x0", start=15.0, end=45.0),))
    a = json.dumps(run_ess(cfg), sort_keys=True)
    b = json.dumps(run_ess(cfg), sort_keys=True)
    assert a == b


def test_fault_free_report_unchanged_by_feature():
    """An empty ap_faults tuple must not perturb the baseline run."""
    baseline = run_ess(_config())
    explicit = run_ess(_config(ap_faults=()))
    assert json.dumps(baseline, sort_keys=True) == json.dumps(
        explicit, sort_keys=True
    )
    assert baseline["totals"]["dropped_ap_down"] == 0
