"""AP interconnect graph + node-disjoint path finder.

The finder claims Menger exactness: the number of node-disjoint paths
between non-adjacent APs equals the minimum vertex cut separating
them.  The property tests below check that against a brute-force cut
enumeration on small random graphs, plus pairwise disjointness and
determinism of the returned sets.
"""

import itertools
import random

import pytest

from repro.ess import (
    ApGraph,
    Link,
    grid_ap_id,
    grid_topology,
    max_disjoint_paths,
    node_disjoint_paths,
    shortest_path,
)
from repro.ess.topology import link_key


def bfs_reachable(adj, src, dst, removed=frozenset()):
    if src in removed or dst in removed:
        return False
    seen, queue = {src}, [src]
    while queue:
        node = queue.pop()
        if node == dst:
            return True
        for nxt in adj[node]:
            if nxt not in seen and nxt not in removed:
                seen.add(nxt)
                queue.append(nxt)
    return False


def brute_min_vertex_cut(graph: ApGraph, src: str, dst: str) -> int:
    """Smallest set of intermediate APs whose removal cuts src from dst.

    Only meaningful for non-adjacent pairs (no vertex set separates
    neighbours).  Exponential — call on graphs with <= ~8 nodes.
    """
    adj = {ap: graph.neighbors(ap) for ap in graph.aps()}
    if not bfs_reachable(adj, src, dst):
        return 0
    middle = [ap for ap in graph.aps() if ap not in (src, dst)]
    for size in range(len(middle) + 1):
        for cut in itertools.combinations(middle, size):
            if not bfs_reachable(adj, src, dst, frozenset(cut)):
                return size
    raise AssertionError("adjacent pair passed to brute_min_vertex_cut")


def random_graph(rng: random.Random, n: int, p: float) -> ApGraph:
    graph = ApGraph()
    names = [f"n{i}" for i in range(n)]
    for name in names:
        graph.add_ap(name)
    for a, b in itertools.combinations(names, 2):
        if rng.random() < p:
            graph.add_link(a, b)
    return graph


class TestLink:
    def test_validation(self):
        with pytest.raises(ValueError):
            Link(capacity=0)
        with pytest.raises(ValueError):
            Link(latency=-0.1)

    def test_link_key_is_orientation_free(self):
        assert link_key("b", "a") == link_key("a", "b") == ("a", "b")


class TestApGraph:
    def test_add_and_query(self):
        g = ApGraph()
        g.add_link("a", "b", capacity=10.0, latency=0.5)
        assert g.aps() == ["a", "b"]
        assert g.neighbors("a") == ["b"]
        assert g.has_link("b", "a")
        assert g.link("a", "b").latency == 0.5
        assert g.links() == [("a", "b", Link(capacity=10.0, latency=0.5))]

    def test_rejects_self_link_and_empty_id(self):
        g = ApGraph()
        with pytest.raises(ValueError):
            g.add_link("a", "a")
        with pytest.raises(ValueError):
            g.add_ap("")

    def test_path_latency_sums_links(self):
        g = ApGraph()
        g.add_link("a", "b", latency=0.25)
        g.add_link("b", "c", latency=0.75)
        assert g.path_latency(["a", "b", "c"]) == pytest.approx(1.0)

    def test_missing_link_raises(self):
        g = ApGraph()
        g.add_link("a", "b")
        with pytest.raises(KeyError):
            g.link("a", "z")


class TestGridTopology:
    def test_3x3_shape(self):
        g = grid_topology(3, 3)
        assert len(g.aps()) == 9
        # 4-neighbour mesh: rows*(cols-1) + cols*(rows-1) links
        assert len(g.links()) == 12
        corner = grid_ap_id(0, 0)
        assert g.neighbors(corner) == [grid_ap_id(0, 1), grid_ap_id(1, 0)]

    def test_grid_is_2_connected_between_all_pairs(self):
        g = grid_topology(2, 3)
        for src, dst in itertools.combinations(g.aps(), 2):
            assert max_disjoint_paths(g, src, dst) >= 2

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            grid_topology(0, 3)


class TestShortestPath:
    def test_prefers_low_latency(self):
        g = ApGraph()
        g.add_link("a", "b", latency=1.0)
        g.add_link("b", "c", latency=1.0)
        g.add_link("a", "c", latency=5.0)
        assert shortest_path(g, "a", "c") == ["a", "b", "c"]

    def test_exclusions(self):
        g = grid_topology(2, 2)
        a, b = grid_ap_id(0, 0), grid_ap_id(1, 1)
        via_01 = shortest_path(g, a, b, exclude_nodes=[grid_ap_id(1, 0)])
        assert via_01 == [a, grid_ap_id(0, 1), b]
        cut = [(a, grid_ap_id(0, 1)), (a, grid_ap_id(1, 0))]
        assert shortest_path(g, a, b, exclude_links=cut) is None

    def test_unknown_endpoint_raises(self):
        with pytest.raises(KeyError):
            shortest_path(grid_topology(2, 2), "ap/0x0", "nope")


class TestNodeDisjointPaths:
    def test_paths_are_valid_and_terminate_correctly(self):
        g = grid_topology(3, 3)
        src, dst = grid_ap_id(0, 0), grid_ap_id(2, 2)
        for path in node_disjoint_paths(g, src, dst):
            assert path[0] == src and path[-1] == dst
            assert len(path) == len(set(path))  # simple
            for a, b in zip(path, path[1:]):
                assert g.has_link(a, b)

    def test_k_limits_the_set(self):
        g = grid_topology(3, 3)
        src, dst = grid_ap_id(0, 1), grid_ap_id(2, 1)
        assert len(node_disjoint_paths(g, src, dst, k=1)) == 1
        assert len(node_disjoint_paths(g, src, dst, k=2)) == 2

    def test_primary_is_lowest_latency(self):
        g = ApGraph()
        g.add_link("s", "m1", latency=0.1)
        g.add_link("m1", "t", latency=0.1)
        g.add_link("s", "m2", latency=1.0)
        g.add_link("m2", "t", latency=1.0)
        paths = node_disjoint_paths(g, "s", "t")
        assert paths[0] == ["s", "m1", "t"]
        assert paths[1] == ["s", "m2", "t"]

    def test_disconnected_pair_yields_empty_set(self):
        g = ApGraph()
        g.add_link("a", "b")
        g.add_link("x", "y")
        assert node_disjoint_paths(g, "a", "x") == []

    def test_butterfly_needs_max_flow(self):
        # two triangles sharing a hub: the s-t Menger number is 1 (the
        # hub), but a greedy shortest-path-with-removal could also find
        # only 1 — instead check a diamond where greedy removal of the
        # shortest path's interior must not block the second path
        g = ApGraph()
        g.add_link("s", "a")
        g.add_link("a", "t")
        g.add_link("s", "b")
        g.add_link("b", "c")
        g.add_link("c", "t")
        g.add_link("a", "b")  # tempting shortcut through both paths
        assert max_disjoint_paths(g, "s", "t") == 2

    def test_errors(self):
        g = grid_topology(2, 2)
        with pytest.raises(ValueError):
            node_disjoint_paths(g, "ap/0x0", "ap/0x0")
        with pytest.raises(ValueError):
            node_disjoint_paths(g, "ap/0x0", "ap/1x1", k=0)
        with pytest.raises(KeyError):
            node_disjoint_paths(g, "ap/0x0", "nope")

    # -- property tests vs brute force ------------------------------------
    def test_pairwise_node_disjoint_on_random_graphs(self):
        rng = random.Random(20260808)
        for trial in range(60):
            g = random_graph(rng, rng.randint(4, 8), rng.uniform(0.2, 0.7))
            aps = g.aps()
            src, dst = rng.sample(aps, 2)
            paths = node_disjoint_paths(g, src, dst)
            for p1, p2 in itertools.combinations(paths, 2):
                shared = set(p1[1:-1]) & set(p2[1:-1])
                assert not shared, (g.to_dict(), src, dst, p1, p2)

    def test_count_matches_brute_force_min_vertex_cut(self):
        rng = random.Random(7)
        checked = 0
        for trial in range(80):
            g = random_graph(rng, rng.randint(4, 7), rng.uniform(0.2, 0.6))
            aps = g.aps()
            src, dst = rng.sample(aps, 2)
            if g.has_link(src, dst):
                continue  # Menger needs non-adjacent endpoints
            expect = brute_min_vertex_cut(g, src, dst)
            assert max_disjoint_paths(g, src, dst) == expect, (
                g.to_dict(), src, dst,
            )
            checked += 1
        assert checked >= 30  # the filter must not eat the test

    def test_deterministic(self):
        rng = random.Random(99)
        for trial in range(20):
            seed = rng.randint(0, 10**9)
            g1 = random_graph(random.Random(seed), 7, 0.4)
            g2 = random_graph(random.Random(seed), 7, 0.4)
            src, dst = "n0", "n6"
            assert node_disjoint_paths(g1, src, dst) == node_disjoint_paths(
                g2, src, dst
            )
