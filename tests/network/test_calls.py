"""Integration tests for the call generator and handoff lifecycle."""

import pytest

from repro.core import QosAccessPoint, QosApConfig
from repro.mac import Nav, StandardBEB
from repro.metrics import MetricsCollector
from repro.network import CallGenerator, CallMixConfig
from repro.phy import BitErrorModel, Channel, PhyTiming
from repro.sim import RandomStreams, Simulator
from repro.traffic import VideoParams, VoiceParams

VOICE = VoiceParams(rate=25, max_jitter=0.03, packet_bits=512 * 8)
VIDEO = VideoParams(avg_rate=60, burstiness=6, max_delay=0.05, packet_bits=512 * 8)


def build(seed=0, **mix_kw):
    sim = Simulator()
    timing = PhyTiming()
    streams = RandomStreams(seed)
    channel = Channel(sim, BitErrorModel(0.0, streams.get("ch")))
    nav = Nav()
    ap = QosAccessPoint(sim, channel, timing, nav, config=QosApConfig())
    collector = MetricsCollector()
    defaults = dict(
        voice=VOICE, video=VIDEO,
        new_voice_rate=1.0, new_video_rate=0.0,
        handoff_voice_rate=0.0, handoff_video_rate=0.0,
        mean_holding=5.0,
    )
    defaults.update(mix_kw)
    mix = CallMixConfig(**defaults)
    gen = CallGenerator(
        sim, ap, channel, timing, nav, lambda: StandardBEB(8),
        streams, mix, collector,
    )
    return sim, ap, gen, collector


def test_new_calls_arrive_and_get_admitted():
    sim, ap, gen, collector = build()
    gen.start()
    sim.run(until=5.0)
    assert gen.attempts["new"] >= 2
    assert gen.admitted["new"] >= 1
    assert gen.concurrent_calls >= 1


def test_admitted_calls_generate_delivered_traffic():
    sim, ap, gen, collector = build()
    gen.start()
    sim.run(until=10.0)
    from repro.traffic import TrafficKind

    assert collector.delivered[TrafficKind.VOICE] > 50


def test_calls_end_and_release_capacity():
    sim, ap, gen, collector = build(mean_holding=1.0)
    gen.start()
    sim.run(until=30.0)
    assert gen.completed >= 5
    # departures release admission slots: admitted never exceeds attempts
    assert len(ap.admission.voice_sessions) <= gen.concurrent_calls + 1


def test_handoff_admitted_counts_as_not_dropped():
    sim, ap, gen, collector = build(
        new_voice_rate=0.0, handoff_voice_rate=1.0
    )
    gen.start()
    sim.run(until=5.0)
    assert gen.attempts["handoff"] >= 2
    assert gen.admitted["handoff"] >= 1
    assert collector.dropping.total_trials == gen.attempts["handoff"] - (
        0 if all(c.resolved for c in gen.active.values()) else
        sum(1 for c in gen.active.values() if not c.resolved)
    )


def test_blocked_calls_are_torn_down():
    # voice too heavy for the channel: everything after the first blocks
    heavy = VoiceParams(rate=3000.0, max_jitter=0.004, packet_bits=512 * 8)
    sim, ap, gen, collector = build(voice=heavy, new_voice_rate=2.0)
    gen.start()
    sim.run(until=5.0)
    assert gen.blocked >= 1
    # blocked stations are unregistered from the AP
    assert len(ap.stations) == len([c for c in gen.active.values()])


def test_handoff_deadline_drops_unserved_requests():
    # make the admission impossible so the deadline must fire
    heavy = VoiceParams(rate=9000.0, max_jitter=0.004, packet_bits=512 * 8)
    sim, ap, gen, collector = build(
        voice=heavy, new_voice_rate=0.0, handoff_voice_rate=1.0,
        handoff_deadline=0.2,
    )
    gen.start()
    sim.run(until=5.0)
    assert gen.dropped >= 1
    assert collector.dropping.total_ratio() == 1.0


def test_voice_and_video_mixes_coexist():
    sim, ap, gen, collector = build(
        new_voice_rate=0.5, new_video_rate=0.5, mean_holding=10.0
    )
    gen.start()
    sim.run(until=15.0)
    from repro.traffic import TrafficKind

    assert collector.delivered[TrafficKind.VOICE] > 0
    assert collector.delivered[TrafficKind.VIDEO] > 0


def test_mix_config_validation():
    with pytest.raises(ValueError):
        CallMixConfig(voice=VOICE, video=VIDEO, new_voice_rate=-1)
    with pytest.raises(ValueError):
        CallMixConfig(voice=VOICE, video=VIDEO, mean_holding=0)
    with pytest.raises(ValueError):
        CallMixConfig(voice=VOICE, video=VIDEO, handoff_deadline=0)
    with pytest.raises(ValueError):
        CallMixConfig(voice=VOICE, video=VIDEO, handoff_time=-0.1)
