"""Whole-MAC integration invariants: CFP protection and BER monotonicity."""

import pytest

from repro.mac.frames import FrameType
from repro.network import BssScenario, ScenarioConfig
from repro.phy.channel import Channel


def run_with_transmission_log(scheme="proposed", **cfg_kw):
    """Run a scenario recording every transmission with its frame type."""
    defaults = dict(
        seed=6, sim_time=15.0, warmup=0.0,
        new_voice_rate=0.4, new_video_rate=0.2,
        handoff_voice_rate=0.2, handoff_video_rate=0.1,
        mean_holding=10.0, n_data_stations=3,
    )
    defaults.update(cfg_kw)
    sc = BssScenario(ScenarioConfig(scheme=scheme, **defaults))
    log = []
    original = Channel.transmit

    def spy(self, frame, duration, sender):
        if self is sc.channel:
            log.append((sc.sim.now, sc.sim.now + duration,
                        getattr(frame, "ftype", None)))
        return original(self, frame, duration, sender)

    Channel.transmit = spy
    try:
        results = sc.run()
    finally:
        Channel.transmit = original
    return sc, results, log


CONTENTION_TYPES = {FrameType.DATA, FrameType.REQUEST, FrameType.RTS}
CFP_TYPES = {FrameType.CF_POLL, FrameType.CF_MULTIPOLL, FrameType.CF_DATA}


def cfp_windows(log):
    """(beacon_start, cf_end_finish) intervals from the transmission log."""
    windows = []
    start = None
    for t0, t1, ftype in log:
        if ftype == FrameType.BEACON:
            start = t0
        elif ftype == FrameType.CF_END and start is not None:
            windows.append((start, t1))
            start = None
    if start is not None:
        # a CFP still open when the simulation clock stopped
        windows.append((start, float("inf")))
    return windows


def test_no_contention_traffic_starts_inside_cfp():
    """The NAV + IFS structure must keep DCF silent during every CFP."""
    _, _, log = run_with_transmission_log()
    windows = cfp_windows(log)
    assert windows, "no CFP observed"
    violations = [
        (t0, ftype)
        for t0, _, ftype in log
        if ftype in CONTENTION_TYPES
        and any(w0 <= t0 < w1 for w0, w1 in windows)
    ]
    assert violations == []


def test_cf_data_only_inside_cfp():
    """Polled responses never appear outside a contention-free period."""
    _, _, log = run_with_transmission_log()
    windows = cfp_windows(log)
    for t0, _, ftype in log:
        if ftype == FrameType.CF_DATA:
            assert any(w0 <= t0 < w1 for w0, w1 in windows)


def test_transmissions_cover_all_expected_types():
    _, _, log = run_with_transmission_log()
    seen = {ftype for _, _, ftype in log}
    for expected in (FrameType.BEACON, FrameType.CF_POLL, FrameType.CF_DATA,
                     FrameType.CF_END, FrameType.DATA, FrameType.REQUEST,
                     FrameType.ACK):
        assert expected in seen, f"never saw {expected}"


@pytest.mark.parametrize("scheme", ["proposed", "conventional"])
def test_loss_rate_monotone_in_ber(scheme):
    """Raising the channel BER must not improve delivery."""
    def loss_fraction(ber):
        cfg = ScenarioConfig(
            scheme=scheme, seed=4, sim_time=12.0, warmup=1.0, ber=ber,
            new_voice_rate=0.4, new_video_rate=0.2,
            handoff_voice_rate=0.0, handoff_video_rate=0.0,
            mean_holding=10.0, n_data_stations=2,
        )
        r = BssScenario(cfg).run()
        delivered = sum(r[f"{k}_delivered"] for k in ("voice", "video", "data"))
        lost = sum(r[f"{k}_losses"] for k in ("voice", "video", "data"))
        return lost / max(1, delivered + lost)

    clean = loss_fraction(0.0)
    noisy = loss_fraction(2e-4)
    assert noisy >= clean
    assert noisy > 0.01  # at 2e-4 a 4 kbit frame dies ~ half the time
