"""Cross-validation: measured blocking vs Erlang-B.

A single-class voice-only cell under the conventional AP is exactly an
M/M/N/N loss system (Poisson arrivals, exponential holding,
blocked-calls-cleared, capacity N fixed by the utilization test).  The
measured blocking probability must therefore track Erlang's B formula —
a closed-form check on the entire call-level pipeline.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.erlang import (
    erlang_b,
    erlang_b_exact,
    erlang_b_inverse_capacity,
    offered_load,
)
from repro.network import BssScenario, ScenarioConfig
from repro.traffic import VoiceParams


class TestErlangB:
    def test_no_load_no_blocking(self):
        assert erlang_b(10, 0.0) == 0.0

    def test_zero_servers_blocks_everything(self):
        assert erlang_b(0, 5.0) == 1.0

    def test_known_value(self):
        # classic engineering table entry: B(5, 3) ~ 0.11
        assert erlang_b(5, 3.0) == pytest.approx(0.1101, abs=1e-3)

    def test_monotone_in_offered_load(self):
        assert erlang_b(8, 4.0) < erlang_b(8, 8.0) < erlang_b(8, 16.0)

    def test_monotone_decreasing_in_servers(self):
        assert erlang_b(4, 6.0) > erlang_b(8, 6.0) > erlang_b(16, 6.0)

    def test_inverse_capacity(self):
        n = erlang_b_inverse_capacity(10.0, 0.02)
        assert erlang_b(n, 10.0) <= 0.02
        assert erlang_b(n - 1, 10.0) > 0.02

    def test_offered_load(self):
        assert offered_load(0.5, 20.0) == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_b(-1, 1.0)
        with pytest.raises(ValueError):
            erlang_b(1, -1.0)
        with pytest.raises(ValueError):
            erlang_b_inverse_capacity(1.0, 1.5)
        with pytest.raises(ValueError):
            offered_load(-1, 1)

    @settings(max_examples=100, deadline=None)
    @given(
        servers=st.integers(min_value=0, max_value=60),
        offered=st.floats(min_value=0.0, max_value=80.0),
    )
    def test_property_recurrence_matches_direct_sum(self, servers, offered):
        assert erlang_b(servers, offered) == pytest.approx(
            erlang_b_exact(servers, offered), rel=1e-9, abs=1e-12
        )

    @settings(max_examples=60, deadline=None)
    @given(
        servers=st.integers(min_value=1, max_value=50),
        offered=st.floats(min_value=0.01, max_value=60.0),
    )
    def test_property_blocking_is_probability(self, servers, offered):
        b = erlang_b(servers, offered)
        assert 0.0 <= b < 1.0


class TestEndToEndErlangValidation:
    def test_conventional_blocking_tracks_erlang_b(self):
        """Voice-only M/M/N/N: measured blocking ~ B(N, a)."""
        # a demanding codec so the capacity is small and blocking visible
        voice = VoiceParams(rate=100.0, max_jitter=0.05, packet_bits=512 * 8)
        arrival = 0.5
        holding = 15.0
        cfg = ScenarioConfig(
            scheme="conventional",
            seed=11,
            sim_time=240.0,
            warmup=20.0,
            new_voice_rate=arrival,
            new_video_rate=0.0,
            handoff_voice_rate=0.0,
            handoff_video_rate=0.0,
            mean_holding=holding,
            n_data_stations=0,
            voice=voice,
        )
        scenario = BssScenario(cfg)
        # admission capacity of the conventional utilization test
        ap = scenario.ap
        capacity = int(ap.cfp_share / (voice.rate * ap.packet_time))
        results = scenario.run()
        a = offered_load(arrival, holding)
        predicted = erlang_b(capacity, a)
        measured = results["blocking_probability"]
        assert capacity >= 1
        assert measured == pytest.approx(predicted, abs=0.12)
        # and the direction is right: nontrivial blocking at this load
        assert predicted > 0.1
