"""End-to-end invariants: nothing is lost, duplicated, or time-warped.

These run full scenarios and check conservation laws that any
discrete-event queueing simulation must satisfy — the tests that catch
double-counting, phantom deliveries, and deadline-semantics drift.
"""

import pytest

from repro.network import BssScenario, ScenarioConfig
from repro.traffic import TrafficKind


@pytest.fixture(scope="module", params=["proposed", "conventional"])
def scenario(request):
    """One moderately loaded run per scheme, fully instrumented."""
    packets = []
    sc = BssScenario(
        ScenarioConfig(
            scheme=request.param,
            seed=9,
            sim_time=25.0,
            warmup=0.0,  # count everything
            load=1.5,
            new_voice_rate=0.3,
            new_video_rate=0.2,
            handoff_voice_rate=0.15,
            handoff_video_rate=0.1,
            mean_holding=10.0,
            n_data_stations=3,
        )
    )
    original = sc.collector.packet_outcome

    def spy(packet, delivered):
        packets.append((packet, delivered))
        original(packet, delivered)

    sc.collector.packet_outcome = spy
    # rebind the already-constructed stations' callbacks
    for sta in sc.data_stations:
        sta.on_packet_outcome = spy
    sc.call_generator.collector = sc.collector
    results = sc.run()
    return sc, results, packets


def test_every_outcome_reported_once(scenario):
    _, _, packets = scenario
    uids = [p.uid for p, _ in packets]
    assert len(uids) == len(set(uids)), "a packet's fate was reported twice"


def test_delivered_packets_have_causal_timestamps(scenario):
    _, _, packets = scenario
    for p, delivered in packets:
        if delivered:
            assert p.completed is not None
            assert p.completed >= p.created


def test_delivered_realtime_packets_met_their_deadline(scenario):
    _, _, packets = scenario
    for p, delivered in packets:
        if delivered and p.deadline is not None:
            assert p.completed <= p.deadline + 1e-9, (
                f"{p.source_id} packet delivered {p.completed - p.deadline}s late"
            )


def test_collector_totals_match_outcome_stream(scenario):
    sc, results, packets = scenario
    for kind in TrafficKind:
        delivered = sum(
            1 for p, ok in packets if ok and p.kind == kind
        )
        lost = sum(1 for p, ok in packets if not ok and p.kind == kind)
        assert results[f"{kind.value}_delivered"] == delivered
        assert results[f"{kind.value}_losses"] == lost


def test_no_packet_outcome_after_simulation_end(scenario):
    sc, _, packets = scenario
    for p, ok in packets:
        if ok:
            assert p.completed <= sc.config.sim_time + 1e-9


def test_call_accounting_balances(scenario):
    sc, results, _ = scenario
    gen = sc.call_generator
    # every resolved attempt is admitted, blocked, or dropped
    resolved = (
        gen.admitted["new"] + gen.admitted["handoff"] + gen.blocked + gen.dropped
    )
    unresolved = sum(1 for c in gen.active.values() if not c.resolved)
    assert resolved + unresolved == (
        gen.attempts["new"] + gen.attempts["handoff"]
    )


def test_probabilities_within_unit_interval(scenario):
    _, results, _ = scenario
    for key in ("dropping_probability", "blocking_probability",
                "channel_busy_fraction", "goodput_utilization"):
        assert 0.0 <= results[key] <= 1.0


def test_channel_time_accounting(scenario):
    sc, _, _ = scenario
    # busy time can never exceed elapsed time
    assert 0 <= sc.channel.busy_time <= sc.config.sim_time + 1e-9
