"""End-to-end tests of the BSS scenario assembly (all three schemes)."""

import pytest

from repro.network import SCHEMES, BssScenario, ScenarioConfig


def quick_cfg(**kw):
    defaults = dict(
        sim_time=12.0, warmup=2.0, seed=7,
        new_voice_rate=0.4, new_video_rate=0.2,
        handoff_voice_rate=0.2, handoff_video_rate=0.1,
        mean_holding=8.0, n_data_stations=2,
    )
    defaults.update(kw)
    return ScenarioConfig(**defaults)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_every_scheme_runs_and_reports(scheme):
    r = BssScenario(quick_cfg(scheme=scheme)).run()
    assert r["scheme"] == scheme
    assert r["data_delivered"] > 0
    assert 0 <= r["dropping_probability"] <= 1
    assert 0 <= r["blocking_probability"] <= 1
    assert 0 < r["channel_busy_fraction"] < 1


def test_same_seed_same_results():
    a = BssScenario(quick_cfg()).run()
    b = BssScenario(quick_cfg()).run()
    assert a == b


def test_different_seeds_differ():
    a = BssScenario(quick_cfg(seed=1)).run()
    b = BssScenario(quick_cfg(seed=2)).run()
    assert a["voice_delay_mean"] != b["voice_delay_mean"]


def test_common_random_numbers_across_schemes():
    """Same seed => both schemes face identical call arrival counts."""
    a = BssScenario(quick_cfg(scheme="proposed")).run()
    b = BssScenario(quick_cfg(scheme="conventional")).run()
    assert a["call_attempts_new"] == b["call_attempts_new"]
    assert a["call_attempts_handoff"] == b["call_attempts_handoff"]


def test_load_scales_offered_traffic():
    lo = BssScenario(quick_cfg(load=0.5)).run()
    hi = BssScenario(quick_cfg(load=2.0)).run()
    assert hi["call_attempts_new"] > lo["call_attempts_new"]
    assert hi["data_delivered"] > lo["data_delivered"]


def test_proposed_beats_conventional_on_rt_delay():
    """The headline result at moderate-heavy load."""
    cfg = dict(sim_time=30.0, warmup=4.0, seed=3, load=1.0,
               new_voice_rate=0.3, new_video_rate=0.2,
               handoff_voice_rate=0.15, handoff_video_rate=0.1,
               mean_holding=20.0)
    p = BssScenario(ScenarioConfig(scheme="proposed", **cfg)).run()
    c = BssScenario(ScenarioConfig(scheme="conventional", **cfg)).run()
    assert p["voice_delay_mean"] < c["voice_delay_mean"]
    assert p["video_delay_mean"] < c["video_delay_mean"]


def test_analytic_bounds_exposed_for_proposed():
    r = BssScenario(quick_cfg(scheme="proposed")).run()
    assert "analytic_voice_bounds" in r
    assert all(b > 0 for b in r["analytic_voice_bounds"])


def test_jitter_within_budget_for_proposed():
    r = BssScenario(quick_cfg(scheme="proposed", sim_time=20.0)).run()
    # expired packets are dropped, so observed jitter of delivered
    # packets stays within the voice jitter budget
    assert r["worst_voice_jitter"] <= 0.03 + 1e-9


def test_scenario_config_validation():
    with pytest.raises(ValueError):
        ScenarioConfig(scheme="bogus")
    with pytest.raises(ValueError):
        ScenarioConfig(sim_time=1.0, warmup=2.0)
    with pytest.raises(ValueError):
        ScenarioConfig(load=0)


def test_offered_load_estimate_positive_and_monotone():
    a = quick_cfg(load=1.0)
    b = quick_cfg(load=2.0)
    assert 0 < a.offered_load_bps() < b.offered_load_bps()
    assert a.normalized_load() < 1.0
