"""Tests for the neighbourhood mobility model."""

import pytest

from repro.network import BssScenario, NeighborhoodConfig, NeighborhoodMobility, ScenarioConfig
from repro.sim import RandomStreams, Simulator
from repro.traffic import TrafficKind


class SinkSpy:
    def __init__(self):
        self.handoffs = []

    def inject_handoff(self, kind):
        self.handoffs.append(kind)


def make(sim=None, **cfg_kw):
    sim = sim or Simulator()
    sink = SinkSpy()
    config = NeighborhoodConfig(**cfg_kw)
    mob = NeighborhoodMobility(sim, sink, RandomStreams(4), config)
    return sim, sink, mob


class TestNeighborhoodConfig:
    def test_equilibrium_population_formula(self):
        c = NeighborhoodConfig(cells=6, new_call_rate=0.05,
                               mean_holding=40.0, mean_residence=30.0,
                               directions=6)
        departure = 1 / 40 + 1 / (30 * 6)
        assert c.equilibrium_population() == pytest.approx(0.3 / departure)

    def test_equilibrium_handoff_rate(self):
        c = NeighborhoodConfig()
        expected = c.equilibrium_population() / c.mean_residence / c.directions
        assert c.equilibrium_handoff_rate() == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            NeighborhoodConfig(cells=0)
        with pytest.raises(ValueError):
            NeighborhoodConfig(new_call_rate=-1)
        with pytest.raises(ValueError):
            NeighborhoodConfig(mean_holding=0)
        with pytest.raises(ValueError):
            NeighborhoodConfig(directions=0)


class TestNeighborhoodMobility:
    def test_warm_start_seeds_population(self):
        sim, sink, mob = make(new_call_rate=0.5)
        mob.start(warm=True)
        total = sum(mob.population.values())
        assert total > 0

    def test_cold_start_begins_empty(self):
        sim, sink, mob = make(new_call_rate=0.0)
        mob.start(warm=False)
        assert sum(mob.population.values()) == 0
        sim.run(until=100.0)
        assert sink.handoffs == []  # nobody to hand off

    def test_handoffs_eventually_arrive(self):
        sim, sink, mob = make(new_call_rate=0.3, mean_residence=5.0)
        mob.start(warm=True)
        sim.run(until=200.0)
        assert len(sink.handoffs) > 0
        assert set(sink.handoffs) <= {TrafficKind.VOICE, TrafficKind.VIDEO}

    def test_population_never_negative(self):
        sim, sink, mob = make(new_call_rate=0.3, mean_residence=5.0,
                              mean_holding=10.0)
        mob.start(warm=True)
        for _ in range(40):
            sim.run(until=sim.now + 5.0)
            assert all(v >= 0 for v in mob.population.values())

    def test_handoff_rate_tracks_equilibrium(self):
        """Long-run handoff intensity approaches the analytic value."""
        sim, sink, mob = make(cells=8, new_call_rate=0.4,
                              mean_holding=20.0, mean_residence=10.0)
        mob.start(warm=True)
        horizon = 2000.0
        sim.run(until=horizon)
        per_class = len(sink.handoffs) / 2 / horizon
        expected = mob.config.equilibrium_handoff_rate()
        assert per_class == pytest.approx(expected, rel=0.2)

    def test_start_is_idempotent(self):
        sim, sink, mob = make(new_call_rate=0.2)
        mob.start()
        pop = dict(mob.population)
        mob.start()
        assert mob.population == pop


class TestScenarioIntegration:
    def test_neighborhood_scenario_runs(self):
        cfg = ScenarioConfig(
            scheme="proposed", seed=3, sim_time=15.0, warmup=2.0,
            mobility="neighborhood",
            new_voice_rate=0.3, new_video_rate=0.2,
            handoff_voice_rate=0.3, handoff_video_rate=0.2,
            mean_holding=15.0,
        )
        sc = BssScenario(cfg)
        r = sc.run()
        assert sc.mobility is not None
        # handoff attempts come from the mobility model, not Poisson
        assert r["call_attempts_handoff"] == sc.mobility.handoffs_injected

    def test_invalid_mobility_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(mobility="teleport")
