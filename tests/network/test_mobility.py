"""Tests for the neighbourhood mobility model."""

import json

import pytest

from repro.network import (
    ROAM_KINDS,
    BssScenario,
    EssCellContext,
    NeighborhoodConfig,
    NeighborhoodMobility,
    ScenarioConfig,
    draw_roam_step,
)
from repro.sim import RandomStreams, Simulator
from repro.traffic import TrafficKind


class SinkSpy:
    def __init__(self):
        self.handoffs = []

    def inject_handoff(self, kind):
        self.handoffs.append(kind)


def make(sim=None, **cfg_kw):
    sim = sim or Simulator()
    sink = SinkSpy()
    config = NeighborhoodConfig(**cfg_kw)
    mob = NeighborhoodMobility(sim, sink, RandomStreams(4), config)
    return sim, sink, mob


class TestNeighborhoodConfig:
    def test_equilibrium_population_formula(self):
        c = NeighborhoodConfig(cells=6, new_call_rate=0.05,
                               mean_holding=40.0, mean_residence=30.0,
                               directions=6)
        departure = 1 / 40 + 1 / (30 * 6)
        assert c.equilibrium_population() == pytest.approx(0.3 / departure)

    def test_equilibrium_handoff_rate(self):
        c = NeighborhoodConfig()
        expected = c.equilibrium_population() / c.mean_residence / c.directions
        assert c.equilibrium_handoff_rate() == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            NeighborhoodConfig(cells=0)
        with pytest.raises(ValueError):
            NeighborhoodConfig(new_call_rate=-1)
        with pytest.raises(ValueError):
            NeighborhoodConfig(mean_holding=0)
        with pytest.raises(ValueError):
            NeighborhoodConfig(directions=0)

    def test_validation_messages_name_field_and_value(self):
        # each invalid field fails on its own check with the offending
        # value in the message, so misconfigurations are diagnosable
        with pytest.raises(ValueError, match="directions must be >= 1, got 0"):
            NeighborhoodConfig(directions=0)
        with pytest.raises(ValueError, match="directions must be >= 1, got -3"):
            NeighborhoodConfig(directions=-3)
        with pytest.raises(
            ValueError, match="mean_residence must be > 0, got -2.5"
        ):
            NeighborhoodConfig(mean_residence=-2.5)
        with pytest.raises(
            ValueError, match="new_call_rate must be >= 0, got -0.1"
        ):
            NeighborhoodConfig(new_call_rate=-0.1)
        with pytest.raises(ValueError, match="mean_holding must be > 0"):
            NeighborhoodConfig(mean_holding=-1.0)


class TestDrawRoamStep:
    def test_short_holding_ends_the_call(self):
        class FixedRng:
            def __init__(self, draws):
                self.draws = iter(draws)

            def exponential(self, mean):
                return next(self.draws) * mean

        dwell, ends = draw_roam_step(FixedRng([0.5, 2.0]), 10.0, 10.0)
        assert ends and dwell == pytest.approx(5.0)
        dwell, ends = draw_roam_step(FixedRng([2.0, 0.5]), 10.0, 10.0)
        assert not ends and dwell == pytest.approx(5.0)

    def test_completion_probability_matches_race(self):
        # P(call ends before moving) = residence / (holding + residence)
        rng = RandomStreams(11).get("roamstep")
        ends = sum(
            draw_roam_step(rng, 30.0, 10.0)[1] for _ in range(4000)
        )
        assert ends / 4000 == pytest.approx(0.25, abs=0.03)


class TestEssCellContext:
    def test_round_trips_through_json(self):
        ctx = EssCellContext(
            cell="ap/1x2", epoch=3, epoch_start=90.0,
            handoff_arrivals=((2.0, "voice"), (4.5, "video")),
        )
        rebuilt = EssCellContext.from_dict(json.loads(json.dumps(ctx.to_dict())))
        assert rebuilt == ctx
        assert isinstance(rebuilt.handoff_arrivals, tuple)

    def test_validation(self):
        with pytest.raises(ValueError):
            EssCellContext(cell="")
        with pytest.raises(ValueError):
            EssCellContext(cell="ap/0x0", epoch=-1)
        with pytest.raises(ValueError):
            EssCellContext(cell="ap/0x0", epoch_start=-1.0)
        with pytest.raises(ValueError):
            EssCellContext(cell="ap/0x0", handoff_arrivals=((-1.0, "voice"),))
        with pytest.raises(ValueError):
            EssCellContext(cell="ap/0x0", handoff_arrivals=((1.0, "data"),))

    def test_arrivals_normalized_to_floats(self):
        ctx = EssCellContext(cell="ap/0x0", handoff_arrivals=((1, "voice"),))
        assert ctx.handoff_arrivals == ((1.0, "voice"),)

    def test_roam_kinds_cover_rt_classes(self):
        assert ROAM_KINDS == ("voice", "video")


class TestEssHandoffInjection:
    def test_context_arrivals_are_injected_on_schedule(self):
        cfg = ScenarioConfig(
            scheme="proposed", seed=5, sim_time=8.0, warmup=1.0,
            new_voice_rate=0.2, new_video_rate=0.1,
            handoff_voice_rate=0.0, handoff_video_rate=0.0,
            mean_holding=20.0, n_data_stations=2,
            ess=EssCellContext(
                cell="ap/0x0", epoch=1, epoch_start=30.0,
                handoff_arrivals=((2.0, "voice"), (3.0, "video"), (9.5, "voice")),
            ),
        )
        r = BssScenario(cfg).run()
        # the 9.5 s arrival lands beyond sim_time and must not fire
        assert r["ess"]["handoffs_scheduled"] == 3
        assert r["ess"]["handoffs_injected"] == 2
        assert r["ess"]["cell"] == "ap/0x0"
        assert r["ess"]["epoch"] == 1

    def test_single_bss_rows_carry_no_ess_block(self):
        cfg = ScenarioConfig(scheme="proposed", seed=5, sim_time=5.0,
                             warmup=1.0)
        r = BssScenario(cfg).run()
        assert "ess" not in r


class TestNeighborhoodMobility:
    def test_warm_start_seeds_population(self):
        sim, sink, mob = make(new_call_rate=0.5)
        mob.start(warm=True)
        total = sum(mob.population.values())
        assert total > 0

    def test_cold_start_begins_empty(self):
        sim, sink, mob = make(new_call_rate=0.0)
        mob.start(warm=False)
        assert sum(mob.population.values()) == 0
        sim.run(until=100.0)
        assert sink.handoffs == []  # nobody to hand off

    def test_handoffs_eventually_arrive(self):
        sim, sink, mob = make(new_call_rate=0.3, mean_residence=5.0)
        mob.start(warm=True)
        sim.run(until=200.0)
        assert len(sink.handoffs) > 0
        assert set(sink.handoffs) <= {TrafficKind.VOICE, TrafficKind.VIDEO}

    def test_population_never_negative(self):
        sim, sink, mob = make(new_call_rate=0.3, mean_residence=5.0,
                              mean_holding=10.0)
        mob.start(warm=True)
        for _ in range(40):
            sim.run(until=sim.now + 5.0)
            assert all(v >= 0 for v in mob.population.values())

    def test_handoff_rate_tracks_equilibrium(self):
        """Long-run handoff intensity approaches the analytic value."""
        sim, sink, mob = make(cells=8, new_call_rate=0.4,
                              mean_holding=20.0, mean_residence=10.0)
        mob.start(warm=True)
        horizon = 2000.0
        sim.run(until=horizon)
        per_class = len(sink.handoffs) / 2 / horizon
        expected = mob.config.equilibrium_handoff_rate()
        assert per_class == pytest.approx(expected, rel=0.2)

    def test_start_is_idempotent(self):
        sim, sink, mob = make(new_call_rate=0.2)
        mob.start()
        pop = dict(mob.population)
        mob.start()
        assert mob.population == pop


class TestScenarioIntegration:
    def test_neighborhood_scenario_runs(self):
        cfg = ScenarioConfig(
            scheme="proposed", seed=3, sim_time=15.0, warmup=2.0,
            mobility="neighborhood",
            new_voice_rate=0.3, new_video_rate=0.2,
            handoff_voice_rate=0.3, handoff_video_rate=0.2,
            mean_holding=15.0,
        )
        sc = BssScenario(cfg)
        r = sc.run()
        assert sc.mobility is not None
        # handoff attempts come from the mobility model, not Poisson
        assert r["call_attempts_handoff"] == sc.mobility.handoffs_injected

    def test_invalid_mobility_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(mobility="teleport")
