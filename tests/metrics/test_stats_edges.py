"""Edge cases of the statistics primitives: empty/singleton merges,
degenerate variance, extrema through merge chains, spurt-gap resets."""

import math

import pytest

from repro.metrics import JitterTracker, OnlineStats


def filled(*values):
    s = OnlineStats()
    for v in values:
        s.add(v)
    return s


class TestMergeEdges:
    def test_merge_two_empties_stays_empty(self):
        a = OnlineStats().merge(OnlineStats())
        assert a.count == 0
        assert a.mean == 0.0 and a.variance == 0.0
        assert math.isinf(a.min) and math.isinf(a.max)

    def test_merge_empty_into_filled_is_identity(self):
        a = filled(1.0, 2.0, 3.0)
        before = a.as_dict()
        assert a.merge(OnlineStats()).as_dict() == before

    def test_merge_filled_into_empty_copies_everything(self):
        b = filled(1.0, 2.0, 3.0)
        a = OnlineStats().merge(b)
        assert a.as_dict() == b.as_dict()
        # the copy is by value: mutating the source later is invisible
        b.add(100.0)
        assert a.count == 3 and a.max == 3.0

    def test_merge_two_singletons_gets_real_variance(self):
        a = filled(1.0).merge(filled(3.0))
        assert a.count == 2
        assert a.mean == pytest.approx(2.0)
        assert a.variance == pytest.approx(2.0)  # ((1-2)^2+(3-2)^2)/(2-1)

    def test_merge_returns_self_for_chaining(self):
        a = OnlineStats()
        assert a.merge(filled(1.0)) is a

    def test_minmax_through_chained_merges(self):
        a = filled(5.0)
        for chunk in [(-3.0, 2.0), (9.0,), (), (0.0, 4.0)]:
            a.merge(filled(*chunk))
        assert a.min == -3.0
        assert a.max == 9.0
        assert a.count == 6

    def test_chained_merge_matches_flat_accumulation(self):
        chunks = [(0.1, 0.2), (0.9,), (0.4, 0.3, 0.8)]
        merged = OnlineStats()
        for chunk in chunks:
            merged.merge(filled(*chunk))
        flat = filled(*(v for chunk in chunks for v in chunk))
        assert merged.count == flat.count
        assert merged.mean == pytest.approx(flat.mean)
        assert merged.variance == pytest.approx(flat.variance)


class TestDegenerateMoments:
    def test_variance_is_zero_below_two_observations(self):
        assert OnlineStats().variance == 0.0
        assert filled(7.0).variance == 0.0
        assert filled(7.0).std == 0.0

    def test_sem_is_infinite_below_two_observations(self):
        assert math.isinf(OnlineStats().sem)
        assert math.isinf(filled(7.0).sem)

    def test_sem_with_two_observations(self):
        s = filled(1.0, 3.0)
        assert s.sem == pytest.approx(math.sqrt(2.0 / 2))

    def test_identical_observations_have_zero_spread(self):
        s = filled(*([2.5] * 10))
        assert s.variance == pytest.approx(0.0, abs=1e-15)
        assert s.sem == pytest.approx(0.0, abs=1e-8)
        assert s.min == s.max == 2.5

    def test_empty_as_dict_uses_none_extrema(self):
        d = OnlineStats().as_dict()
        assert d["min"] is None and d["max"] is None


class TestJitterTrackerEdges:
    def test_spurt_gap_resets_the_chain_automatically(self):
        j = JitterTracker(spurt_gap=0.5)
        j.delivered(0.00, 0.001)
        j.delivered(0.02, 0.021)
        assert j.stats.count == 1
        # a silence longer than the gap: next packet starts a new spurt
        j.delivered(5.0, 5.4)
        assert j.stats.count == 1
        # and the one after chains against the new spurt's head
        j.delivered(5.02, 5.42)
        assert j.stats.count == 2

    def test_gap_exactly_at_threshold_keeps_the_chain(self):
        j = JitterTracker(spurt_gap=0.5)
        j.delivered(0.0, 0.001)
        j.delivered(0.5, 0.501)  # == spurt_gap, not >
        assert j.stats.count == 1

    def test_max_jitter_is_zero_when_nothing_measured(self):
        j = JitterTracker()
        assert j.max_jitter == 0.0
        j.delivered(0.0, 0.1)
        assert j.max_jitter == 0.0  # single packet: still no pair

    def test_zero_delay_deliveries_are_legal(self):
        j = JitterTracker()
        j.delivered(1.0, 1.0)
        j.delivered(2.0, 2.0)
        assert j.max_jitter == 0.0

    def test_invalid_spurt_gap_rejected(self):
        with pytest.raises(ValueError):
            JitterTracker(spurt_gap=0.0)

    def test_jitter_is_symmetric_in_lag_direction(self):
        # shrinking lag counts the same as growing lag (absolute value)
        grow, shrink = JitterTracker(), JitterTracker()
        grow.delivered(0.00, 0.001)
        grow.delivered(0.02, 0.025)  # lag 1 ms -> 5 ms
        shrink.delivered(0.00, 0.005)
        shrink.delivered(0.02, 0.021)  # lag 5 ms -> 1 ms
        assert grow.max_jitter == pytest.approx(shrink.max_jitter)
