"""Unit tests for the scenario metrics collector."""

import pytest

from repro.metrics import MetricsCollector
from repro.traffic import Packet, TrafficKind


def pkt(created=1.0, completed=None, bits=4096, sid="voice/0",
        kind=TrafficKind.VOICE):
    p = Packet(created=created, bits=bits, source_id=sid, kind=kind, seq=0)
    p.completed = completed
    return p


def test_delivered_packet_updates_delay_stats():
    c = MetricsCollector()
    c.packet_outcome(pkt(1.0, 1.01), True)
    assert c.delivered[TrafficKind.VOICE] == 1
    assert c.access_delay[TrafficKind.VOICE].mean == pytest.approx(0.01)
    assert c.useful_bits == 4096


def test_lost_packet_counts_as_loss():
    c = MetricsCollector()
    c.packet_outcome(pkt(1.0), False)
    assert c.losses[TrafficKind.VOICE] == 1
    assert c.loss_rate(TrafficKind.VOICE) == 1.0


def test_warmup_filters_early_packets():
    c = MetricsCollector(warmup=5.0)
    c.packet_outcome(pkt(1.0, 1.01), True)
    assert c.delivered[TrafficKind.VOICE] == 0
    c.packet_outcome(pkt(6.0, 6.01), True)
    assert c.delivered[TrafficKind.VOICE] == 1


def test_voice_jitter_tracked_per_source():
    c = MetricsCollector()
    c.packet_outcome(pkt(1.00, 1.001, sid="a"), True)
    c.packet_outcome(pkt(1.02, 1.025, sid="a"), True)
    c.packet_outcome(pkt(1.00, 1.001, sid="b"), True)
    assert "a" in c.jitter and "b" in c.jitter
    assert c.worst_jitter() == pytest.approx(0.004)


def test_video_max_delay_tracked():
    c = MetricsCollector()
    c.packet_outcome(pkt(1.0, 1.03, sid="video/1", kind=TrafficKind.VIDEO), True)
    c.packet_outcome(pkt(2.0, 2.01, sid="video/1", kind=TrafficKind.VIDEO), True)
    assert c.worst_delay("video") == pytest.approx(0.03)
    assert c.worst_delay("data") == 0.0


def test_call_outcomes_counted():
    c = MetricsCollector()
    c.handoff_outcome(dropped=True, now=1.0)
    c.handoff_outcome(dropped=False, now=2.0)
    c.newcall_outcome(blocked=False, now=3.0)
    assert c.dropping.total_ratio() == pytest.approx(0.5)
    assert c.blocking.total_ratio() == 0.0


def test_call_outcomes_respect_warmup():
    c = MetricsCollector(warmup=10.0)
    c.handoff_outcome(dropped=True, now=1.0)
    assert c.dropping.total_trials == 0


def test_adaptation_sample_ages_window():
    c = MetricsCollector()
    c.handoff_outcome(dropped=True, now=1.0)
    drop, block, util = c.adaptation_sample(0.4)
    assert drop == 1.0 and util == 0.4
    # aged but remembered
    drop2, _, _ = c.adaptation_sample(0.4)
    assert drop2 == pytest.approx(1.0)


def test_utilization_computation():
    c = MetricsCollector()
    c.packet_outcome(pkt(1.0, 1.01, bits=11_000_000), True)
    assert c.utilization(1.0, 11e6) == pytest.approx(1.0)
    assert c.utilization(0.0, 11e6) == 0.0


def test_summary_contains_everything():
    c = MetricsCollector()
    c.packet_outcome(pkt(1.0, 1.01), True)
    s = c.summary()
    assert s["voice_delivered"] == 1
    assert "dropping_probability" in s
    assert "worst_voice_jitter" in s
    assert s["voice_delay_mean"] == pytest.approx(0.01)
