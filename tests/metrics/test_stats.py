"""Unit + property tests for the statistics primitives."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import JitterTracker, OnlineStats, WindowedRatio


class TestOnlineStats:
    def test_empty(self):
        s = OnlineStats()
        assert s.count == 0
        assert s.mean == 0.0
        assert s.variance == 0.0

    def test_single_value(self):
        s = OnlineStats()
        s.add(5.0)
        assert s.mean == 5.0
        assert s.variance == 0.0
        assert s.min == s.max == 5.0

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        xs = rng.normal(3.0, 2.0, 500)
        s = OnlineStats()
        for x in xs:
            s.add(float(x))
        assert s.mean == pytest.approx(float(np.mean(xs)))
        assert s.variance == pytest.approx(float(np.var(xs, ddof=1)))
        assert s.min == pytest.approx(float(np.min(xs)))
        assert s.max == pytest.approx(float(np.max(xs)))

    def test_merge_equivalent_to_combined(self):
        rng = np.random.default_rng(1)
        xs = rng.random(100)
        a, b, c = OnlineStats(), OnlineStats(), OnlineStats()
        for x in xs[:40]:
            a.add(float(x))
        for x in xs[40:]:
            b.add(float(x))
        for x in xs:
            c.add(float(x))
        a.merge(b)
        assert a.count == c.count
        assert a.mean == pytest.approx(c.mean)
        assert a.variance == pytest.approx(c.variance)

    def test_merge_with_empty(self):
        a = OnlineStats()
        b = OnlineStats()
        b.add(1.0)
        a.merge(b)
        assert a.mean == 1.0
        b.merge(OnlineStats())
        assert b.count == 1

    def test_as_dict(self):
        s = OnlineStats()
        s.add(2.0)
        d = s.as_dict()
        assert d["count"] == 1 and d["mean"] == 2.0

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=50))
    def test_property_variance_nonnegative_and_bounds(self, xs):
        s = OnlineStats()
        for x in xs:
            s.add(x)
        assert s.variance >= -1e-6
        assert s.min <= s.mean <= s.max + 1e-9


class TestJitterTracker:
    def test_first_packet_records_nothing(self):
        j = JitterTracker()
        j.delivered(0.0, 0.001)
        assert j.stats.count == 0

    def test_constant_lag_zero_jitter(self):
        j = JitterTracker()
        for k in range(5):
            j.delivered(k * 0.02, k * 0.02 + 0.001)
        assert j.max_jitter == pytest.approx(0.0)

    def test_varying_lag_measured(self):
        j = JitterTracker()
        j.delivered(0.00, 0.001)
        j.delivered(0.02, 0.025)  # lag grew by 4 ms
        assert j.max_jitter == pytest.approx(0.004)

    def test_reset_breaks_chain(self):
        j = JitterTracker()
        j.delivered(0.0, 0.001)
        j.reset_stream()
        j.delivered(10.0, 10.5)  # would be huge jitter if chained
        assert j.stats.count == 0

    def test_departure_before_arrival_rejected(self):
        with pytest.raises(ValueError):
            JitterTracker().delivered(1.0, 0.5)


class TestWindowedRatio:
    def test_empty_ratio_zero(self):
        assert WindowedRatio().ratio() == 0.0
        assert WindowedRatio().total_ratio() == 0.0

    def test_basic_counting(self):
        w = WindowedRatio()
        for flag in (True, False, False, True):
            w.record(flag)
        assert w.ratio() == pytest.approx(0.5)
        assert w.total_ratio() == pytest.approx(0.5)

    def test_decay_preserves_ratio_but_fades_weight(self):
        w = WindowedRatio()
        w.record(True)
        w.record(False)
        w.decay(0.5)
        assert w.ratio() == pytest.approx(0.5)
        w.record(False)  # new evidence now outweighs old
        assert w.ratio() < 0.5

    def test_empty_window_after_decay_keeps_memory(self):
        w = WindowedRatio()
        w.record(True)
        w.decay(0.9)
        # no new trials: the old drop is still remembered
        assert w.ratio() == pytest.approx(1.0)

    def test_totals_unaffected_by_decay(self):
        w = WindowedRatio()
        w.record(True)
        w.decay(0.1)
        w.record(False)
        assert w.total_ratio() == pytest.approx(0.5)

    def test_restart_clears_window_only(self):
        w = WindowedRatio()
        w.record(True)
        w.restart_window()
        assert w.ratio() == 0.0
        assert w.total_ratio() == 1.0

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            WindowedRatio().decay(1.0)
