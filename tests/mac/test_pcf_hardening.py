"""PCF hardening: poll delivery, bounded re-poll, CF-End-loss fallback.

These drive the coordinator with a *scripted* error model (one verdict
per transmitted frame, in air order) so every corruption is placed
deterministically: beacon first, then the poll(s), responses, CF-End.
"""

import pytest

from repro.mac import Frame, FrameType, Nav, PcfCoordinator, PollAction
from repro.phy import Channel, PhyTiming
from repro.sim import Simulator


class ScriptedErrors:
    """Pops one scripted survival verdict per frame; defaults to True."""

    def __init__(self, script=()):
        self.script = list(script)

    def success_probability(self, frame_bits):
        return 1.0

    def frame_survives(self, frame_bits):
        return self.script.pop(0) if self.script else True


class Recorder:
    """Scheduler that polls a fixed action list and records outcomes."""

    def __init__(self, actions):
        self.actions = list(actions)
        self.responses = []

    def next_action(self, now, elapsed):
        return self.actions.pop(0) if self.actions else None

    def on_response(self, sid, frame, ok, now):
        self.responses.append((sid, frame, ok, now))


class Station:
    def __init__(self, sid, radio_down=False):
        self.sid = sid
        self.radio_down = radio_down
        self.polled_at = []

    def cf_response(self, now):
        self.polled_at.append(now)
        return Frame(FrameType.CF_DATA, src=self.sid, dest="ap",
                     payload_bits=4096, piggyback=False)


class World:
    def __init__(self, script=()):
        self.sim = Simulator()
        self.timing = PhyTiming()
        self.channel = Channel(self.sim, ScriptedErrors(script))
        self.nav = Nav()
        self.coord = PcfCoordinator(
            self.sim, self.channel, self.timing, self.nav, "ap"
        )

    def run_cfp(self, sched, stations=(), duration=0.05):
        for st in stations:
            self.coord.register(st.sid, st)
        ended = []
        self.coord.start_cfp(sched, duration, lambda: ended.append(self.sim.now))
        self.sim.run()
        return ended


class TestPollDelivery:
    def test_corrupted_poll_is_retransmitted_and_recovers(self):
        # air order: beacon ok, poll corrupted, retry ok, response ok...
        world = World(script=[True, False, True])
        sta = Station("s1")
        sched = Recorder([PollAction(("s1",))])
        world.run_cfp(sched, [sta])
        assert world.coord.stats.poll_retries == 1
        assert world.coord.stats.polls_lost == 0
        assert len(sta.polled_at) == 1  # only the delivered copy was heard
        (sid, frame, ok, _), = sched.responses
        assert sid == "s1" and ok and frame is not None

    def test_retry_budget_exhaustion_reports_abnormal_null(self):
        # beacon ok, then the poll and both retries corrupted
        world = World(script=[True, False, False, False])
        sta = Station("s1")
        sched = Recorder([PollAction(("s1",))])
        ended = world.run_cfp(sched, [sta])
        assert world.coord.stats.poll_retries == world.coord.max_poll_retries
        assert world.coord.stats.polls_lost == 1
        assert sta.polled_at == []  # the station never heard a thing
        (sid, frame, ok, _), = sched.responses
        assert (sid, frame, ok) == ("s1", None, False)
        assert ended  # the CFP still wound down cleanly

    def test_lost_multipoll_nulls_every_polled_station(self):
        world = World(script=[True, False, False, False])
        stations = [Station("s1"), Station("s2")]
        sched = Recorder([PollAction(("s1", "s2"))])
        world.run_cfp(sched, stations)
        assert world.coord.stats.polls_lost == 1
        assert [(r[0], r[2]) for r in sched.responses] == [
            ("s1", False), ("s2", False),
        ]
        assert all(st.polled_at == [] for st in stations)

    def test_retried_multipoll_recovers_all_responses(self):
        world = World(script=[True, False, True])
        stations = [Station("s1"), Station("s2")]
        sched = Recorder([PollAction(("s1", "s2"))])
        world.run_cfp(sched, stations)
        assert world.coord.stats.multipolls_sent == 1  # counted once
        assert world.coord.stats.poll_retries == 1
        assert [(r[0], r[2]) for r in sched.responses] == [
            ("s1", True), ("s2", True),
        ]

    def test_retransmission_waits_pifs(self):
        world = World(script=[True, False, True])
        sta = Station("s1")
        sched = Recorder([PollAction(("s1",))])
        world.run_cfp(sched, [sta])
        t = world.timing
        # heard poll = beacon + SIFS + poll (lost) + PIFS + poll (ok)
        beacon_done = t.pifs + t.beacon_time()
        expected = beacon_done + t.sifs + t.poll_time() + t.pifs + t.poll_time()
        assert sta.polled_at[0] == pytest.approx(expected + t.sifs, rel=1e-6)


class TestUnreachableStation:
    def test_radio_down_station_yields_abnormal_null(self):
        world = World()
        sta = Station("s1", radio_down=True)
        sched = Recorder([PollAction(("s1",))])
        world.run_cfp(sched, [sta])
        assert world.coord.stats.unreachable_nulls == 1
        assert world.coord.stats.null_responses == 0  # not a legit null
        assert sta.polled_at == []
        (sid, frame, ok, _), = sched.responses
        assert (sid, frame, ok) == ("s1", None, False)

    def test_cfp_continues_past_the_silent_station(self):
        world = World()
        down, up = Station("s1", radio_down=True), Station("s2")
        sched = Recorder([PollAction(("s1",)), PollAction(("s2",))])
        world.run_cfp(sched, [down, up])
        assert len(up.polled_at) == 1
        by_sid = {r[0]: r[2] for r in sched.responses}
        assert by_sid == {"s1": False, "s2": True}


class TestCfEndLoss:
    def script_cf_end_loss(self):
        # beacon ok, (no polls), CF-End corrupted
        return World(script=[True, False])

    def test_default_mode_idealizes_cf_end_delivery(self):
        world = self.script_cf_end_loss()
        ended = world.run_cfp(Recorder([]))
        assert world.coord.stats.cf_ends_lost == 0
        assert not world.nav.blocked(world.sim.now)
        assert ended

    def test_strict_mode_falls_back_to_nav_expiry(self):
        world = self.script_cf_end_loss()
        world.coord.strict_cf_end = True
        duration = 0.05
        ended = world.run_cfp(Recorder([]), duration=duration)
        assert world.coord.stats.cf_ends_lost == 1
        # the stations never heard the CF-End: their NAV holds until
        # the beacon's announced deadline, then contention resumes
        assert world.nav.blocked(world.sim.now)
        cfp_start = world.timing.pifs
        assert world.nav.until == pytest.approx(cfp_start + duration, rel=1e-6)
        assert ended and not world.coord.active

    def test_strict_mode_clears_nav_when_cf_end_arrives(self):
        world = World()  # nothing corrupted
        world.coord.strict_cf_end = True
        world.run_cfp(Recorder([]))
        assert world.coord.stats.cf_ends_lost == 0
        assert not world.nav.blocked(world.sim.now)
