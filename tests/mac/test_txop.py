"""Tests for HCF-style TXOP bursts in the PCF coordinator."""

import pytest

from repro.mac import Frame, FrameType, PcfCoordinator, PollAction


class BurstStation:
    """Holds a queue of packets; responds like a real-time station."""

    def __init__(self, sid, packets):
        self.sid = sid
        self.packets = packets
        self.responses = 0

    def cf_response(self, now):
        if not self.packets:
            return None
        self.packets -= 1
        self.responses += 1
        return Frame(
            FrameType.CF_DATA, src=self.sid, dest="ap", payload_bits=4096,
            piggyback=self.packets > 0,
            info={"backlog": self.packets > 0, "eof": False},
        )


class OnePollScheduler:
    def __init__(self, sid):
        self.sid = sid
        self.polled = False
        self.responses = []

    def next_action(self, now, elapsed):
        if self.polled:
            return None
        self.polled = True
        return PollAction((self.sid,))

    def on_response(self, sid, frame, ok, now):
        self.responses.append((sid, frame, now))


def make_coord(world, txop):
    return PcfCoordinator(
        world.sim, world.channel, world.timing, world.nav, "ap",
        txop_packets=txop,
    )


def test_txop_one_is_classic_pcf(world):
    coord = make_coord(world, txop=1)
    sta = BurstStation("s1", packets=5)
    coord.register("s1", sta)
    sched = OnePollScheduler("s1")
    coord.start_cfp(sched, 0.05, lambda: None)
    world.sim.run()
    assert sta.responses == 1  # one frame per poll
    assert coord.stats.polls_sent == 1


def test_txop_burst_drains_backlog_on_single_poll(world):
    coord = make_coord(world, txop=4)
    sta = BurstStation("s1", packets=5)
    coord.register("s1", sta)
    sched = OnePollScheduler("s1")
    coord.start_cfp(sched, 0.05, lambda: None)
    world.sim.run()
    assert sta.responses == 4  # capped by the TXOP
    assert coord.stats.polls_sent == 1
    assert len(sched.responses) == 4


def test_txop_stops_early_when_backlog_empties(world):
    coord = make_coord(world, txop=8)
    sta = BurstStation("s1", packets=3)
    coord.register("s1", sta)
    sched = OnePollScheduler("s1")
    coord.start_cfp(sched, 0.05, lambda: None)
    world.sim.run()
    assert sta.responses == 3


def test_txop_responses_sifs_separated(world):
    coord = make_coord(world, txop=3)
    sta = BurstStation("s1", packets=3)
    coord.register("s1", sta)
    sched = OnePollScheduler("s1")
    coord.start_cfp(sched, 0.05, lambda: None)
    world.sim.run()
    times = [t for (_, _, t) in sched.responses]
    t = world.timing
    frame_time = t.frame_airtime(4096)
    for a, b in zip(times, times[1:]):
        assert b - a == pytest.approx(t.sifs + frame_time, rel=1e-6)


def test_txop_cheaper_than_repolling(world):
    """Draining k packets via TXOP must beat k single polls."""

    def run(txop):
        from .conftest import MacWorld

        w = MacWorld()
        coord = PcfCoordinator(
            w.sim, w.channel, w.timing, w.nav, "ap", txop_packets=txop
        )
        sta = BurstStation("s1", packets=4)
        coord.register("s1", sta)

        class Repoll:
            def next_action(self, now, elapsed):
                return PollAction(("s1",)) if sta.packets else None

            def on_response(self, sid, frame, ok, now):
                pass

        coord.start_cfp(Repoll(), 0.05, lambda: None)
        w.sim.run()
        return coord.stats.cfp_time

    assert run(txop=4) < run(txop=1)


def test_invalid_txop_rejected(world):
    with pytest.raises(ValueError):
        make_coord(world, txop=0)
