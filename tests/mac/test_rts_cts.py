"""Tests for the RTS/CTS handshake in the DCF engine."""

import pytest

from repro.mac import DcfTransmitter, Frame, FrameType
from repro.mac.backoff import LEVEL_NEW_OR_DATA

from .conftest import FixedBackoff, MacWorld


def make_tx(world, sid="sta", slots=(0,), threshold=4000, retry_limit=7):
    policy = FixedBackoff(list(slots))
    tx = DcfTransmitter(
        world.sim, world.channel, world.timing, policy,
        world.rng(sid), sid, world.nav,
        retry_limit=retry_limit, rts_threshold=threshold,
    )
    return tx


def data(sid, bits):
    return Frame(FrameType.DATA, src=sid, dest="ap", payload_bits=bits)


def test_small_frames_skip_rts(world):
    tx = make_tx(world, threshold=4000)
    results = []
    tx.enqueue(data("sta", 1000), LEVEL_NEW_OR_DATA, results.append)
    world.sim.run()
    assert results == [True]
    assert tx.stats.rts_handshakes == 0


def test_large_frames_use_rts(world):
    tx = make_tx(world, threshold=4000)
    results = []
    tx.enqueue(data("sta", 8000), LEVEL_NEW_OR_DATA, results.append)
    world.sim.run()
    assert results == [True]
    assert tx.stats.rts_handshakes == 1


def test_rts_exchange_duration(world):
    """RTS + SIFS + CTS + SIFS + DATA + SIFS + ACK, started at DIFS+slots."""
    world_t = world.timing
    tx = make_tx(world, slots=(2,), threshold=4000)
    done_at = []
    tx.enqueue(data("sta", 8000), LEVEL_NEW_OR_DATA,
               lambda ok: done_at.append(world.sim.now))
    world.sim.run()
    rts = Frame(FrameType.RTS, src="s", dest="d").airtime(world_t)
    cts = Frame(FrameType.CTS, src="s", dest="d").airtime(world_t)
    start = world_t.difs + 2 * world_t.slot
    expected = (
        start + rts + world_t.sifs + cts + world_t.sifs
        + world_t.frame_airtime(8000) + world_t.sifs + world_t.ack_time()
    )
    assert done_at[0] == pytest.approx(expected, rel=1e-9)


def test_collision_costs_only_rts():
    """With RTS protection a collision loses only the short RTS frames,
    so the whole episode (collision + both retries) finishes sooner
    than the identical scenario without RTS."""

    def run(threshold):
        world = MacWorld()
        tx_a = make_tx(world, "a", slots=(0, 1), threshold=threshold)
        tx_b = make_tx(world, "b", slots=(0, 4), threshold=threshold)
        results = []
        tx_a.enqueue(data("a", 12000), LEVEL_NEW_OR_DATA, results.append)
        tx_b.enqueue(data("b", 12000), LEVEL_NEW_OR_DATA, results.append)
        world.sim.run()
        assert results == [True, True]
        assert tx_a.stats.failures == 1  # the initial collision
        return world.sim.now

    with_rts = run(threshold=4000)
    without_rts = run(threshold=float("inf"))
    assert with_rts < without_rts


def test_rts_retry_respects_limit():
    world = MacWorld()
    tx_a = make_tx(world, "a", slots=(0,), threshold=100, retry_limit=2)
    tx_b = make_tx(world, "b", slots=(0,), threshold=100, retry_limit=2)
    results = []
    tx_a.enqueue(data("a", 8000), LEVEL_NEW_OR_DATA, results.append)
    tx_b.enqueue(data("b", 8000), LEVEL_NEW_OR_DATA, results.append)
    world.sim.run()
    assert results == [False, False]
    assert tx_a.stats.drops == 1


def test_cts_corruption_fails_attempt():
    # BER high enough to kill some control frames over repeated tries
    world = MacWorld(ber=2e-3, seed=5)
    tx = make_tx(world, threshold=1000, retry_limit=7)
    results = []
    tx.enqueue(data("sta", 4000), LEVEL_NEW_OR_DATA, results.append)
    world.sim.run()
    # the attempt concluded one way or the other without hanging
    assert len(results) == 1


def test_request_frames_never_use_rts(world):
    tx = make_tx(world, threshold=0)  # everything above 0 bits
    frame = Frame(FrameType.REQUEST, src="sta", dest="ap")
    results = []
    tx.enqueue(frame, LEVEL_NEW_OR_DATA, results.append)
    world.sim.run()
    assert results == [True]
    assert tx.stats.rts_handshakes == 0


def test_rts_cts_frame_sizes(world):
    t = world.timing
    rts = Frame(FrameType.RTS, src="s", dest="d")
    cts = Frame(FrameType.CTS, src="s", dest="d")
    assert rts.total_bits == 160
    assert cts.total_bits == 112
    assert rts.airtime(t) > cts.airtime(t)
    assert rts.airtime(t) < t.frame_airtime(1000)
