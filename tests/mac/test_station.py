"""Unit tests for the station state machines (paper Fig. 2)."""

import pytest

from repro.mac import DcfTransmitter, FrameType, RealTimeStation, RTState
from repro.mac.backoff import (
    LEVEL_HANDOFF,
    LEVEL_NEW_OR_DATA,
    LEVEL_REACTIVATION,
)
from repro.mac.station import DataStation
from repro.traffic import Packet, TrafficKind, VoiceParams

from .conftest import FixedBackoff


def make_rt(world, sid="rt1", handoff=False, outcomes=None):
    policy = FixedBackoff([0])
    dcf = DcfTransmitter(
        world.sim, world.channel, world.timing, policy,
        world.rng(sid), sid, world.nav,
    )
    sta = RealTimeStation(
        world.sim, sid, dcf, "ap", TrafficKind.VOICE,
        VoiceParams(rate=50, max_jitter=0.02),
        is_handoff=handoff,
        on_packet_outcome=(outcomes.append if outcomes is not None else None)
        and (lambda p, ok: outcomes.append((p, ok))),
    )
    return sta, dcf, policy


def pkt(world, bits=4096, deadline=None):
    return Packet(
        created=world.sim.now, bits=bits, source_id="rt1",
        kind=TrafficKind.VOICE, seq=0, deadline=deadline,
    )


class TestRealTimeStation:
    def test_initial_state_empty(self, world):
        sta, _, _ = make_rt(world)
        assert sta.state == RTState.EMPTY
        assert not sta.admitted

    def test_admission_request_uses_new_level(self, world):
        sta, _, policy = make_rt(world)
        sta.start_admission_request()
        world.sim.run()
        assert policy.draws[0][0] == LEVEL_NEW_OR_DATA

    def test_handoff_request_uses_highest_level(self, world):
        sta, _, policy = make_rt(world, handoff=True)
        sta.start_admission_request()
        world.sim.run()
        assert policy.draws[0][0] == LEVEL_HANDOFF

    def test_reactivation_uses_middle_level(self, world):
        sta, _, policy = make_rt(world)
        sta.grant()  # admitted, Empty
        sta.state = RTState.EMPTY
        sta.packet_arrival(pkt(world))
        world.sim.run()
        assert policy.draws[0][0] == LEVEL_REACTIVATION
        assert sta.state == RTState.REQUEST

    def test_grant_moves_to_wait(self, world):
        sta, _, _ = make_rt(world)
        sta.start_admission_request()
        sta.grant()
        assert sta.state == RTState.WAIT
        assert sta.admitted

    def test_deny_returns_to_empty(self, world):
        sta, _, _ = make_rt(world)
        sta.start_admission_request()
        sta.deny()
        assert sta.state == RTState.EMPTY
        assert not sta.admitted

    def test_double_admission_rejected(self, world):
        sta, _, _ = make_rt(world)
        sta.grant()
        with pytest.raises(RuntimeError):
            sta.start_admission_request()

    def test_cf_response_sets_piggyback_when_backlogged(self, world):
        sta, _, _ = make_rt(world)
        sta.grant()
        sta.buffer.append(pkt(world))
        sta.buffer.append(pkt(world))
        frame = sta.cf_response(0.0)
        assert frame.ftype == FrameType.CF_DATA
        assert frame.piggyback
        assert sta.state == RTState.WAIT

    def test_cf_response_zero_piggyback_empties_to_empty_state(self, world):
        sta, _, _ = make_rt(world)
        sta.grant()
        sta.buffer.append(pkt(world))
        frame = sta.cf_response(0.0)
        assert not frame.piggyback
        assert sta.state == RTState.EMPTY

    def test_cf_response_none_when_buffer_empty(self, world):
        sta, _, _ = make_rt(world)
        sta.grant()
        assert sta.cf_response(0.0) is None
        assert sta.state == RTState.EMPTY

    def test_expired_packets_purged_and_counted(self, world):
        outcomes = []
        sta, _, _ = make_rt(world)
        sta.on_packet_outcome = lambda p, ok: outcomes.append((p.uid, ok))
        sta.grant()
        dead = pkt(world, deadline=-1.0)
        live = pkt(world, deadline=1e9)
        sta.buffer.extend([dead, live])
        frame = sta.cf_response(0.0)
        assert frame.packet is live
        assert sta.deadline_drops == 1
        assert dead.expired
        assert outcomes == [(dead.uid, False)]

    def test_delivery_outcome_marks_completion(self, world):
        sta, _, _ = make_rt(world)
        p = pkt(world)
        sta.delivery_outcome(p, True, 3.5)
        assert p.completed == 3.5
        sta.delivery_outcome(pkt(world), False, 4.0)
        assert sta.error_losses == 1

    def test_eof_blocks_new_arrivals(self, world):
        sta, _, _ = make_rt(world)
        sta.grant()
        sta.end_call()
        sta.packet_arrival(pkt(world))
        assert not sta.buffer

    def test_eof_flag_on_last_frame(self, world):
        sta, _, _ = make_rt(world)
        sta.grant()
        sta.buffer.append(pkt(world))
        sta.end_call()
        frame = sta.cf_response(0.0)
        assert frame.info["eof"] is True

    def test_request_failure_returns_to_empty(self, world):
        # Two stations with identical zero backoff forever -> drop after
        # retry limit -> the requester falls back to Empty.
        sta, dcf, _ = make_rt(world, sid="rt1")
        other, _, _ = make_rt(world, sid="rt2")
        results = []
        sta.start_admission_request(results.append)
        other.start_admission_request(lambda ok: None)
        world.sim.run()
        assert results == [False]
        assert sta.state == RTState.EMPTY


class TestDataStation:
    def test_packets_sent_and_marked_complete(self, world):
        policy = FixedBackoff([0])
        dcf = DcfTransmitter(
            world.sim, world.channel, world.timing, policy,
            world.rng("d"), "d1", world.nav,
        )
        outcomes = []
        sta = DataStation(world.sim, "d1", dcf, "ap",
                          on_packet_outcome=lambda p, ok: outcomes.append(ok))
        p = Packet(created=0.0, bits=8000, source_id="d1",
                   kind=TrafficKind.DATA, seq=0)
        sta.packet_arrival(p)
        world.sim.run()
        assert outcomes == [True]
        assert sta.delivered == 1
        assert p.completed is not None
        assert p.access_delay() > 0
