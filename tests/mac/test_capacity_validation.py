"""Cross-validation: simulated DCF saturation vs Bianchi's model.

If the MAC substrate drifts from standard CSMA/CA semantics (slot
counting, freeze/resume, collision costs), this is the test that
catches it: the measured saturation throughput must track the
analytical renewal model within a few percent.
"""

import pytest

from repro.core import bianchi_tau, saturation_throughput
from repro.mac import DcfTransmitter, Frame, FrameType, Nav, StandardBEB
from repro.mac.backoff import LEVEL_NEW_OR_DATA
from repro.phy import BitErrorModel, Channel, PhyTiming
from repro.sim import RandomStreams, Simulator

CW_MIN = 32
MAX_STAGE = 5
PAYLOAD = 8192


def simulate(n_stations, sim_time=3.0, seed=3):
    sim = Simulator()
    timing = PhyTiming()
    streams = RandomStreams(seed)
    channel = Channel(sim, BitErrorModel(0.0, streams.get("ch")))
    nav = Nav()
    policy = StandardBEB(cw_min=CW_MIN, cw_max=CW_MIN * 2**MAX_STAGE)
    delivered = [0]

    def refill(tx, sid):
        frame = Frame(FrameType.DATA, src=sid, dest="ap", payload_bits=PAYLOAD)

        def done(ok):
            if ok:
                delivered[0] += 1
            refill(tx, sid)

        tx.enqueue(frame, LEVEL_NEW_OR_DATA, done)

    for i in range(n_stations):
        sid = f"s{i}"
        tx = DcfTransmitter(sim, channel, timing, policy, streams.get(sid), sid, nav)
        refill(tx, sid)
    sim.run(until=sim_time)
    return delivered[0] * PAYLOAD / sim_time / timing.data_rate


@pytest.mark.parametrize("n", [2, 5, 10])
def test_simulated_saturation_matches_bianchi(n):
    timing = PhyTiming()
    tau = bianchi_tau(n, CW_MIN, MAX_STAGE)
    analytic = saturation_throughput(n, tau, timing, PAYLOAD)
    measured = simulate(n)
    assert measured == pytest.approx(analytic, rel=0.07)


def test_throughput_declines_gently_with_crowding():
    """Saturation throughput decreases as contention grows (BEB's
    collision cost), but stays the same order of magnitude."""
    s_small = simulate(2)
    s_large = simulate(16)
    assert s_large < s_small
    assert s_large > 0.5 * s_small
