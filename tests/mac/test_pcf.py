"""Unit tests for the PCF coordinator."""

import pytest

from repro.mac import Frame, FrameType, PcfCoordinator, PollAction


class ScriptedScheduler:
    """Polls a fixed sequence of actions, then ends the CFP."""

    def __init__(self, actions):
        self.actions = list(actions)
        self.responses = []

    def next_action(self, now, elapsed):
        if not self.actions:
            return None
        return self.actions.pop(0)

    def on_response(self, station_id, frame, ok, now):
        self.responses.append((station_id, frame, ok, now))


class EchoStation:
    """Responds to every poll with a fixed-size CF-Data frame."""

    def __init__(self, sid, bits=4096, responses=None):
        self.sid = sid
        self.bits = bits
        self.remaining = responses  # None = unlimited
        self.polled_at = []

    def cf_response(self, now):
        self.polled_at.append(now)
        if self.remaining is not None:
            if self.remaining == 0:
                return None
            self.remaining -= 1
        return Frame(FrameType.CF_DATA, src=self.sid, dest="ap",
                     payload_bits=self.bits, piggyback=False)


def make_coord(world):
    return PcfCoordinator(world.sim, world.channel, world.timing, world.nav, "ap")


def test_cfp_beacon_poll_response_cfend(world):
    coord = make_coord(world)
    sta = EchoStation("s1")
    coord.register("s1", sta)
    sched = ScriptedScheduler([PollAction(("s1",))])
    ended = []
    coord.start_cfp(sched, 0.05, lambda: ended.append(world.sim.now))
    world.sim.run()
    assert len(sta.polled_at) == 1
    assert len(sched.responses) == 1
    sid, frame, ok, _ = sched.responses[0]
    assert sid == "s1" and ok and frame.payload_bits == 4096
    assert ended and ended[0] > 0
    assert coord.stats.polls_sent == 1
    assert coord.stats.cfps_started == 1
    assert not coord.active


def test_cfp_seizes_at_pifs(world):
    coord = make_coord(world)
    sched = ScriptedScheduler([])
    coord.start_cfp(sched, 0.05, lambda: None)
    world.sim.run()
    # beacon started exactly PIFS after the idle medium start (t=0)
    # CF-End follows beacon + SIFS; total time sanity:
    t = world.timing
    assert coord.stats.cfp_time == pytest.approx(
        t.beacon_time() + t.sifs + t.poll_time(), rel=1e-6
    )


def test_nav_set_during_cfp_and_cleared_after(world):
    coord = make_coord(world)
    sta = EchoStation("s1")
    coord.register("s1", sta)
    sched = ScriptedScheduler([PollAction(("s1",))])
    nav_during = []

    def probe():
        nav_during.append(world.nav.blocked(world.sim.now))

    world.sim.call_at(0.001, probe)
    coord.start_cfp(sched, 0.05, lambda: None)
    world.sim.run()
    assert nav_during == [True]
    assert not world.nav.blocked(world.sim.now)


def test_multipoll_single_frame_multiple_responses(world):
    coord = make_coord(world)
    stations = [EchoStation(f"s{i}") for i in range(3)]
    for s in stations:
        coord.register(s.sid, s)
    sched = ScriptedScheduler([PollAction(("s0", "s1", "s2"))])
    coord.start_cfp(sched, 0.05, lambda: None)
    world.sim.run()
    assert coord.stats.multipolls_sent == 1
    assert coord.stats.polls_sent == 0
    assert [r[0] for r in sched.responses] == ["s0", "s1", "s2"]
    # responses are ordered in time
    times = [r[3] for r in sched.responses]
    assert times == sorted(times)


def test_multipoll_cheaper_than_single_polls(world):
    # time for 3 single polls vs one multipoll of 3
    t = world.timing
    single = 3 * (t.poll_time() + 2 * t.sifs + t.frame_airtime(4096))
    multi = t.poll_time(extra_payload_bits=48) + 3 * (
        t.sifs + t.frame_airtime(4096) + t.sifs
    )
    assert multi < single


def test_null_response_advances_after_pifs(world):
    coord = make_coord(world)
    sta = EchoStation("s1", responses=0)
    coord.register("s1", sta)
    sched = ScriptedScheduler([PollAction(("s1",))])
    coord.start_cfp(sched, 0.05, lambda: None)
    world.sim.run()
    assert coord.stats.null_responses == 1
    assert sched.responses[0][1] is None


def test_budget_ends_cfp_early(world):
    coord = make_coord(world)
    sta = EchoStation("s1", bits=1500 * 8)
    coord.register("s1", sta)
    # endless polling of the same station; tight budget cuts it off
    class Endless:
        def __init__(self):
            self.responses = 0

        def next_action(self, now, elapsed):
            return PollAction(("s1",))

        def on_response(self, sid, frame, ok, now):
            self.responses += 1

    sched = Endless()
    budget = 0.01
    coord.start_cfp(sched, budget, lambda: None)
    world.sim.run()
    assert coord.stats.cfp_time <= budget + 1e-9
    assert sched.responses >= 1


def test_poll_unregistered_station_degrades_to_abnormal_null(world):
    # a scheduler naming a departed station must not crash the sim:
    # the coordinator reports an abnormal null (ok=False) and moves on
    coord = make_coord(world)
    sched = ScriptedScheduler([PollAction(("ghost",))])
    coord.start_cfp(sched, 0.05, lambda: None)
    world.sim.run()
    assert coord.stats.ghost_polls == 1
    assert coord.stats.polls_sent == 0
    assert sched.responses == [("ghost", None, False, sched.responses[0][3])]


def test_ghost_station_filtered_out_of_multipoll(world):
    coord = make_coord(world)
    sta = EchoStation("s1")
    coord.register("s1", sta)
    sched = ScriptedScheduler([PollAction(("ghost", "s1"))])
    coord.start_cfp(sched, 0.05, lambda: None)
    world.sim.run()
    assert coord.stats.ghost_polls == 1
    # the survivor was still polled (as a single poll, not a multipoll)
    assert coord.stats.polls_sent == 1
    assert coord.stats.multipolls_sent == 0
    by_sid = {r[0]: r for r in sched.responses}
    assert by_sid["ghost"][1] is None and by_sid["ghost"][2] is False
    assert by_sid["s1"][1] is not None


def test_overlapping_cfp_rejected(world):
    coord = make_coord(world)
    coord.start_cfp(ScriptedScheduler([]), 0.05, lambda: None)
    with pytest.raises(RuntimeError):
        coord.start_cfp(ScriptedScheduler([]), 0.05, lambda: None)


def test_invalid_duration_rejected(world):
    coord = make_coord(world)
    with pytest.raises(ValueError):
        coord.start_cfp(ScriptedScheduler([]), 0.0, lambda: None)


def test_cfp_defers_to_busy_medium(world):
    coord = make_coord(world)
    # occupy the medium first
    frame = Frame(FrameType.DATA, src="x", dest="y", payload_bits=80_000)
    world.channel.transmit(frame, 0.01, sender=None)
    sched = ScriptedScheduler([])
    started = []
    coord.start_cfp(sched, 0.05, lambda: started.append(world.sim.now))
    world.sim.run()
    # the CFP could only begin PIFS after the busy period ended
    assert started[0] >= 0.01 + world.timing.pifs


def test_unregister_is_idempotent(world):
    coord = make_coord(world)
    coord.register("s1", EchoStation("s1"))
    coord.unregister("s1")
    coord.unregister("s1")
    assert "s1" not in coord.stations


def test_poll_action_requires_stations():
    with pytest.raises(ValueError):
        PollAction(())
