"""Unit tests for the DCF CSMA/CA engine."""

import pytest

from repro.mac import DcfTransmitter, Frame, FrameType, StandardBEB
from repro.mac.backoff import LEVEL_NEW_OR_DATA

from .conftest import FixedBackoff, MacWorld


def make_tx(world, sid="sta", slots=(0,), retry_limit=7):
    policy = FixedBackoff(list(slots))
    tx = DcfTransmitter(
        world.sim,
        world.channel,
        world.timing,
        policy,
        world.rng(sid),
        sid,
        world.nav,
        retry_limit=retry_limit,
    )
    return tx, policy


def data_frame(sid, bits=8000, dest="ap"):
    return Frame(FrameType.DATA, src=sid, dest=dest, payload_bits=bits)


def test_single_station_immediate_access_succeeds(world):
    tx, _ = make_tx(world)
    results = []
    # make the medium idle for longer than DIFS before the frame arrives
    world.sim.call_at(1.0, lambda: tx.enqueue(data_frame("sta"), LEVEL_NEW_OR_DATA,
                                              results.append))
    world.sim.run()
    assert results == [True]
    assert tx.stats.attempts == 1
    assert tx.stats.successes == 1


def test_exchange_duration_matches_data_plus_sifs_plus_ack(world):
    tx, _ = make_tx(world)
    t = world.timing
    done_at = []
    world.sim.call_at(1.0, lambda: tx.enqueue(data_frame("sta", bits=8000),
                                              LEVEL_NEW_OR_DATA,
                                              lambda ok: done_at.append(world.sim.now)))
    world.sim.run()
    expected = 1.0 + t.frame_airtime(8000) + t.sifs + t.ack_time()
    assert done_at[0] == pytest.approx(expected, rel=1e-9)


def test_backoff_slots_delay_transmission(world):
    # Station starts at t=0 when the medium has been idle since t=0:
    # idle_duration < DIFS so no immediate access; 5 slots of backoff.
    tx, _ = make_tx(world, slots=(5,))
    done_at = []
    tx.enqueue(data_frame("sta"), LEVEL_NEW_OR_DATA,
               lambda ok: done_at.append(world.sim.now))
    world.sim.run()
    t = world.timing
    start = t.difs + 5 * t.slot
    expected = start + t.frame_airtime(8000) + t.sifs + t.ack_time()
    assert done_at[0] == pytest.approx(expected, rel=1e-9)


def test_two_stations_same_slot_collide_then_retry(world):
    # Both pick slot 2 initially -> collision; retries pick 1 and 4.
    tx_a, pol_a = make_tx(world, "a", slots=[2, 1])
    tx_b, pol_b = make_tx(world, "b", slots=[2, 4])
    results = {}
    tx_a.enqueue(data_frame("a"), LEVEL_NEW_OR_DATA, lambda ok: results.setdefault("a", ok))
    tx_b.enqueue(data_frame("b"), LEVEL_NEW_OR_DATA, lambda ok: results.setdefault("b", ok))
    world.sim.run()
    assert results == {"a": True, "b": True}
    assert tx_a.stats.failures == 1
    assert tx_b.stats.failures == 1
    assert tx_a.stats.successes == 1
    assert tx_b.stats.successes == 1
    # retry draws used stage 1
    assert pol_a.draws[1][1] == 1
    assert pol_b.draws[1][1] == 1


def test_loser_freezes_and_resumes_backoff(world):
    # a picks 1 slot, b picks 4; a transmits first, b freezes with 3 left
    # and resumes after a's exchange, transmitting without a new draw.
    tx_a, _ = make_tx(world, "a", slots=[1])
    tx_b, pol_b = make_tx(world, "b", slots=[4])
    order = []
    tx_a.enqueue(data_frame("a"), LEVEL_NEW_OR_DATA, lambda ok: order.append(("a", ok)))
    tx_b.enqueue(data_frame("b"), LEVEL_NEW_OR_DATA, lambda ok: order.append(("b", ok)))
    world.sim.run()
    assert order == [("a", True), ("b", True)]
    # b drew exactly once (no re-draw after freeze)
    assert len(pol_b.draws) == 1
    assert tx_b.stats.busy_freezes >= 1


def test_retry_limit_drops_frame(world):
    # Station b transmits a long frame whenever a does, forever: rig by
    # making both always draw slot 0 -> permanent collision.
    tx_a, _ = make_tx(world, "a", slots=[0], retry_limit=3)
    tx_b, _ = make_tx(world, "b", slots=[0], retry_limit=3)
    results = []
    tx_a.enqueue(data_frame("a"), LEVEL_NEW_OR_DATA, results.append)
    tx_b.enqueue(data_frame("b"), LEVEL_NEW_OR_DATA, results.append)
    world.sim.run()
    assert results == [False, False]
    assert tx_a.stats.drops == 1
    assert tx_a.stats.attempts == 3


def test_queue_drains_in_fifo_order(world):
    tx, _ = make_tx(world, slots=(0,))
    done = []
    for i in range(3):
        frame = data_frame("sta", bits=1000 * (i + 1))
        tx.enqueue(frame, LEVEL_NEW_OR_DATA,
                   lambda ok, i=i: done.append((i, world.sim.now)))
    world.sim.run()
    assert [i for i, _ in done] == [0, 1, 2]
    assert done[0][1] < done[1][1] < done[2][1]
    assert tx.pending == 0


def test_nav_blocks_contention_until_expiry(world):
    tx, _ = make_tx(world, slots=(0,))
    world.nav.set(2.0)
    done_at = []
    world.sim.call_at(1.0, lambda: tx.enqueue(data_frame("sta"), LEVEL_NEW_OR_DATA,
                                              lambda ok: done_at.append(world.sim.now)))
    world.sim.run()
    assert done_at[0] >= 2.0


def test_beacon_frame_sets_nav(world):
    tx, _ = make_tx(world, slots=(10,))
    tx.enqueue(data_frame("sta"), LEVEL_NEW_OR_DATA, None)
    beacon = Frame(FrameType.BEACON, src="ap", dest="*", nav_duration=0.5)

    def send_beacon():
        world.channel.transmit(beacon, beacon.airtime(world.timing), sender=None)

    world.sim.call_at(world.timing.difs + world.timing.slot, send_beacon)
    world.sim.run()
    # NAV must have been set by the beacon payload
    assert world.nav.until >= world.timing.difs + 0.5


def test_cf_end_clears_nav(world):
    tx, _ = make_tx(world, slots=(0,))
    world.nav.set(10.0)
    cf_end = Frame(FrameType.CF_END, src="ap", dest="*")
    world.sim.call_at(1.0,
                      lambda: world.channel.transmit(cf_end,
                                                     cf_end.airtime(world.timing),
                                                     sender=None))
    done_at = []
    tx.enqueue(data_frame("sta"), LEVEL_NEW_OR_DATA,
               lambda ok: done_at.append(world.sim.now))
    world.sim.run()
    assert done_at and done_at[0] < 2.0  # well before the stale NAV


def test_ber_corruption_causes_retry():
    world = MacWorld(ber=5e-3, seed=1)  # virtually every frame corrupted
    tx, _ = make_tx(world, slots=(1,), retry_limit=2)
    results = []
    tx.enqueue(data_frame("sta"), LEVEL_NEW_OR_DATA, results.append)
    world.sim.run()
    assert results == [False]
    assert tx.stats.failures == 2


def test_policy_sees_outcomes(world):
    tx_a, pol_a = make_tx(world, "a", slots=[0, 1])
    tx_b, _ = make_tx(world, "b", slots=[0, 3])
    tx_a.enqueue(data_frame("a"), LEVEL_NEW_OR_DATA, None)
    tx_b.enqueue(data_frame("b"), LEVEL_NEW_OR_DATA, None)
    world.sim.run()
    assert pol_a.outcomes == [False, True]


def test_shutdown_detaches(world):
    tx, _ = make_tx(world)
    tx.shutdown()
    # transmissions no longer reach the detached engine
    world.channel.transmit(data_frame("x"), 1e-3, sender=None)
    world.sim.run()
    assert tx.stats.attempts == 0


def test_standard_beb_window_growth():
    beb = StandardBEB(cw_min=8, cw_max=64)
    assert beb.window(0) == 8
    assert beb.window(1) == 16
    assert beb.window(3) == 64
    assert beb.window(10) == 64  # capped
    assert beb.max_stage() == 3


def test_standard_beb_draws_within_window():
    import numpy as np

    beb = StandardBEB(cw_min=8, cw_max=256)
    rng = np.random.Generator(np.random.PCG64(0))
    draws = [beb.draw_slots(0, 2, rng) for _ in range(500)]
    assert min(draws) >= 0
    assert max(draws) <= 31
    assert len(set(draws)) > 10


def test_standard_beb_invalid_bounds():
    with pytest.raises(ValueError):
        StandardBEB(cw_min=0)
    with pytest.raises(ValueError):
        StandardBEB(cw_min=32, cw_max=16)
    with pytest.raises(ValueError):
        StandardBEB().window(-1)
