"""Shared fixtures/helpers for MAC tests."""

import numpy as np
import pytest

from repro.mac import BackoffPolicy, Nav
from repro.phy import BitErrorModel, Channel, PhyTiming
from repro.sim import RandomStreams, Simulator


class FixedBackoff(BackoffPolicy):
    """Deterministic policy: pops preset slot counts (then repeats last)."""

    def __init__(self, slots):
        self.slots = list(slots)
        self.draws = []
        self.observed = []
        self.outcomes = []

    def draw_slots(self, level, stage, rng):
        value = self.slots.pop(0) if len(self.slots) > 1 else self.slots[0]
        self.draws.append((level, stage, value))
        return value

    def observe_slots(self, idle_slots, busy_events):
        self.observed.append((idle_slots, busy_events))

    def observe_outcome(self, success):
        self.outcomes.append(success)


class MacWorld:
    """A simulator + channel + timing bundle with helpers."""

    def __init__(self, ber=0.0, seed=0):
        self.sim = Simulator()
        self.timing = PhyTiming()
        self.streams = RandomStreams(seed)
        self.channel = Channel(
            self.sim, BitErrorModel(ber, self.streams.get("channel"))
        )
        self.nav = Nav()

    def rng(self, name):
        return self.streams.get(name)


@pytest.fixture
def world():
    return MacWorld()


@pytest.fixture
def noisy_world():
    return MacWorld(ber=2e-4, seed=3)
