"""Tests for the station's CF-Null / ETA signalling and service margin."""

import pytest

from repro.mac import DcfTransmitter, FrameType, RealTimeStation, RTState
from repro.mac.backoff import StandardBEB
from repro.traffic import Packet, TrafficKind, VoiceParams

from .conftest import MacWorld


def make_station(world, sid="v0", margin=0.0, rate=25.0):
    dcf = DcfTransmitter(
        world.sim, world.channel, world.timing, StandardBEB(8),
        world.rng(sid), sid, world.nav,
    )
    sta = RealTimeStation(
        world.sim, sid, dcf, "ap", TrafficKind.VOICE,
        VoiceParams(rate=rate, max_jitter=0.03),
        service_margin=margin,
    )
    return sta


def pkt(world, deadline=None, created=None):
    t = created if created is not None else world.sim.now
    return Packet(created=t, bits=4096, source_id="v0",
                  kind=TrafficKind.VOICE, seq=0, deadline=deadline)


class TestCfNull:
    def test_active_station_sends_null_with_eta(self, world):
        sta = make_station(world, rate=25.0)
        sta.grant()
        sta.activity_probe = lambda: True
        # a packet arrived and was consumed earlier; track its time
        p = pkt(world)
        sta.packet_arrival(p)
        sta.buffer.clear()  # simulate it having been served
        frame = sta.cf_response(0.01)
        assert frame is not None
        assert frame.payload_bits == 0
        assert frame.piggyback
        # next packet expected at created + 1/25 = 0.04 -> eta 0.03
        assert frame.info["next_eta"] == pytest.approx(0.03)

    def test_eta_clamps_at_zero_when_overdue(self, world):
        sta = make_station(world, rate=25.0)
        sta.grant()
        sta.activity_probe = lambda: True
        sta.packet_arrival(pkt(world, created=0.0))
        sta.buffer.clear()
        frame = sta.cf_response(1.0)  # long past created + 1/r
        assert frame.info["next_eta"] == 0.0

    def test_null_without_arrivals_has_no_eta(self, world):
        sta = make_station(world)
        sta.grant()
        sta.activity_probe = lambda: True
        frame = sta.cf_response(0.0)
        assert frame is not None
        assert frame.info["next_eta"] is None

    def test_inactive_station_returns_none(self, world):
        sta = make_station(world)
        sta.grant()
        sta.activity_probe = lambda: False
        assert sta.cf_response(0.0) is None
        assert sta.state == RTState.EMPTY


class TestServiceMargin:
    def test_packet_unservable_within_margin_is_purged(self, world):
        sta = make_station(world, margin=0.002)
        sta.grant()
        # deadline 1 ms away, margin 2 ms: cannot finish in time
        sta.buffer.append(pkt(world, deadline=world.sim.now + 0.001))
        assert sta.cf_response(world.sim.now) is None
        assert sta.deadline_drops == 1

    def test_packet_with_enough_margin_is_served(self, world):
        sta = make_station(world, margin=0.002)
        sta.grant()
        sta.buffer.append(pkt(world, deadline=world.sim.now + 0.01))
        frame = sta.cf_response(world.sim.now)
        assert frame is not None
        assert frame.ftype == FrameType.CF_DATA

    def test_zero_margin_is_legacy_behaviour(self, world):
        sta = make_station(world, margin=0.0)
        sta.grant()
        sta.buffer.append(pkt(world, deadline=world.sim.now + 1e-6))
        assert sta.cf_response(world.sim.now) is not None
