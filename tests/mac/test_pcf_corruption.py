"""PCF behaviour under channel errors and multipoll edge cases."""

import pytest

from repro.mac import Frame, FrameType, PcfCoordinator, PollAction

from .conftest import MacWorld


class Responder:
    def __init__(self, sid, bits=4096):
        self.sid = sid
        self.bits = bits

    def cf_response(self, now):
        return Frame(FrameType.CF_DATA, src=self.sid, dest="ap",
                     payload_bits=self.bits, piggyback=False)


class Recorder:
    def __init__(self, actions):
        self.actions = list(actions)
        self.outcomes = []

    def next_action(self, now, elapsed):
        return self.actions.pop(0) if self.actions else None

    def on_response(self, sid, frame, ok, now):
        self.outcomes.append((sid, ok))


def test_corrupted_response_reported_not_ok():
    world = MacWorld(ber=5e-3, seed=2)  # ~every data frame dies
    coord = PcfCoordinator(world.sim, world.channel, world.timing,
                           world.nav, "ap")
    coord.register("s1", Responder("s1"))
    sched = Recorder([PollAction(("s1",))])
    coord.start_cfp(sched, 0.05, lambda: None)
    world.sim.run()
    assert sched.outcomes == [("s1", False)]


def test_multipoll_continues_past_corrupted_member():
    world = MacWorld(ber=5e-3, seed=2)
    coord = PcfCoordinator(world.sim, world.channel, world.timing,
                           world.nav, "ap")
    for sid in ("a", "b", "c"):
        coord.register(sid, Responder(sid))
    sched = Recorder([PollAction(("a", "b", "c"))])
    coord.start_cfp(sched, 0.05, lambda: None)
    world.sim.run()
    assert [sid for sid, _ in sched.outcomes] == ["a", "b", "c"]


def test_station_departing_during_poll_airtime_yields_null():
    """A call can tear down while its CF-Poll is already on the air;
    the coordinator treats the vanished station as a null response and
    the CFP proceeds."""
    world = MacWorld()
    coord = PcfCoordinator(world.sim, world.channel, world.timing,
                           world.nav, "ap")
    coord.register("a", Responder("a"))
    coord.register("b", Responder("b"))

    class DepartingScheduler(Recorder):
        def next_action(self, now, elapsed):
            action = super().next_action(now, elapsed)
            if action and action.station_ids == ("b",):
                # b's teardown timer fires while its poll is in flight
                world.sim.call_in(1e-5, coord.unregister, "b")
            return action

    sched = DepartingScheduler([PollAction(("a",)), PollAction(("b",))])
    coord.start_cfp(sched, 0.05, lambda: None)
    world.sim.run()
    assert sched.outcomes == [("a", True), ("b", True)]
    assert coord.stats.null_responses == 1
