"""Tests for the experiments package: tables, sweeps, figure generators."""

import pytest

from repro.experiments import (
    EVALUATION_LOADS,
    average_over_seeds,
    fig5,
    fig6,
    fig8,
    fig11,
    format_table,
    render_table1,
    render_table2,
    run_point,
    run_sweep,
    sweep_config,
    table1,
    table2,
)
from repro.experiments.config import phy_overheads


class TestTables:
    def test_table1_matches_paper_example(self):
        rows = table1(alphas=(4, 4, 8), beta=0, stages=2)
        by_key = {(r["priority"], r["retry stage"]): r["backoff slots"] for r in rows}
        assert by_key[(0, 0)] == "0-3"
        assert by_key[(1, 0)] == "4-7"
        assert by_key[(2, 0)] == "8-15"
        assert by_key[(0, 1)] == "0-7"
        assert by_key[(2, 1)] == "16-31"

    def test_table1_labels_match_paper_classes(self):
        rows = table1()
        classes = {r["traffic class"] for r in rows}
        assert any("handoff" in c for c in classes)
        assert any("reactivation" in c or "inactivated" in c for c in classes)
        assert any("data" in c for c in classes)

    def test_table2_has_paper_stated_values(self):
        entries = {r["parameter"]: r["value"] for r in table2()}
        assert entries["voice talk spurt (on)"] == "exp(mean 1.35 s)"
        assert entries["voice silence (off)"] == "exp(mean 1.5 s)"
        assert entries["video delay bound D"] == "50 ms"
        assert entries["data MSDU length"] == "exp(mean 1024 octets)"
        assert entries["superframe (conventional)"] == "75 ms"
        assert entries["CFP maximum (conventional)"] == "50 ms"

    def test_render_tables_nonempty(self):
        assert "Table I" in render_table1()
        assert "Table II" in render_table2()


class TestRunner:
    def test_sweep_config_valid_for_all_loads(self):
        for load in EVALUATION_LOADS:
            cfg = sweep_config("proposed", load, 1)
            assert cfg.load == load

    def test_run_point_returns_results(self):
        cfg = sweep_config("proposed", 0.5, 1, sim_time=8.0, warmup=1.0)
        r = run_point(cfg)
        assert r["scheme"] == "proposed"

    def test_run_sweep_grid_size(self):
        rows = run_sweep(
            ["proposed"], loads=[0.5], seeds=[1, 2], sim_time=6.0, warmup=1.0
        )
        assert len(rows) == 2

    def test_average_over_seeds(self):
        rows = [
            {"scheme": "p", "load": 1.0, "x": 1.0},
            {"scheme": "p", "load": 1.0, "x": 3.0},
            {"scheme": "p", "load": 2.0, "x": 5.0},
        ]
        avg = average_over_seeds(rows, ["x"])
        assert len(avg) == 2
        one = next(r for r in avg if r["load"] == 1.0)
        assert one["x"] == pytest.approx(2.0)
        assert one["x_std"] == pytest.approx(2.0**0.5)

    def test_format_table_alignment(self):
        text = format_table(
            [{"a": 1.23456, "b": "x"}], ["a", "b"], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "1.235" in lines[3]

    def test_phy_overheads_sane(self):
        o = phy_overheads()
        assert 0 < o["poll_time"] < o["rt_exchange_time"]


class TestFigures:
    def test_fig5_bounds_dominate_simulation(self):
        rows = fig5(populations=((2, 1), (3, 2)), sim_time=10.0)
        for r in rows:
            assert r["simulated_max_jitter"] <= r["analytic_max_jitter"]
            assert r["simulated_max_delay"] <= r["analytic_max_delay"]

    def test_fig5_bounds_grow_with_population(self):
        rows = fig5(populations=((1, 1), (4, 3)), sim_time=5.0)
        assert rows[1]["analytic_max_jitter"] > rows[0]["analytic_max_jitter"]
        assert rows[1]["analytic_max_delay"] > rows[0]["analytic_max_delay"]

    def test_sweep_figures_project_expected_metrics(self):
        rows = run_sweep(
            ["proposed"], loads=[0.5], seeds=[1], sim_time=6.0, warmup=1.0
        )
        f6 = fig6(rows)
        assert "dropping_probability" in f6[0]
        f8 = fig8(rows)
        assert "voice_delay_mean" in f8[0]
        f11 = fig11(rows)
        assert "channel_busy_fraction" in f11[0]
