"""Tests for the results archive (JSON-lines persistence)."""

import json

import numpy as np
import pytest

from repro.experiments.io import load_results, merge_results, save_results


def test_roundtrip(tmp_path):
    rows = [{"scheme": "proposed", "load": 1.0, "x": 0.5},
            {"scheme": "conventional", "load": 2.0, "x": 0.7}]
    p = save_results(rows, tmp_path / "sweep.jsonl")
    assert load_results(p) == rows


def test_manifest_header_written(tmp_path):
    p = save_results([{"a": 1}], tmp_path / "r.jsonl")
    first = json.loads(p.read_text().splitlines()[0])
    assert first["_manifest"] is True
    assert "repro" in first


def test_numpy_scalars_coerced(tmp_path):
    rows = [{"x": np.float64(1.5), "n": np.int64(3), "xs": (np.float64(1.0),)}]
    p = save_results(rows, tmp_path / "np.jsonl")
    loaded = load_results(p)
    assert loaded == [{"x": 1.5, "n": 3, "xs": [1.0]}]


def test_append_mode(tmp_path):
    p = tmp_path / "a.jsonl"
    save_results([{"i": 1}], p)
    save_results([{"i": 2}], p, append=True)
    assert [r["i"] for r in load_results(p)] == [1, 2]


def test_append_to_missing_file_creates_it(tmp_path):
    p = save_results([{"i": 1}], tmp_path / "new.jsonl", append=True)
    assert load_results(p) == [{"i": 1}]


def test_merge(tmp_path):
    a = save_results([{"i": 1}], tmp_path / "a.jsonl")
    b = save_results([{"i": 2}, {"i": 3}], tmp_path / "b.jsonl")
    assert [r["i"] for r in merge_results([a, b])] == [1, 2, 3]


def test_headerless_file_tolerated(tmp_path):
    p = tmp_path / "legacy.jsonl"
    p.write_text('{"i": 9}\n')
    assert load_results(p) == [{"i": 9}]


def test_unsupported_format_rejected(tmp_path):
    p = tmp_path / "future.jsonl"
    p.write_text('{"_manifest": true, "format": 99}\n{"i": 1}\n')
    with pytest.raises(ValueError):
        load_results(p)


def test_empty_file(tmp_path):
    p = tmp_path / "empty.jsonl"
    p.write_text("")
    assert load_results(p) == []


def test_directories_created(tmp_path):
    p = save_results([{"i": 1}], tmp_path / "deep" / "dir" / "r.jsonl")
    assert p.exists()
