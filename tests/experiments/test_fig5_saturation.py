"""Edge cases of the Fig. 5 static-population builder."""

from repro.experiments.figures import _static_bss
from repro.experiments.runner import run_sweep


def test_oversized_population_saturates_gracefully():
    """Requesting more sources than admission allows must not crash;
    the reported population is what was actually admitted."""
    row = _static_bss(n_voice=40, n_video=40, seed=2, sim_time=2.0)
    assert 0 < row["n_voice"] < 40
    assert 0 <= row["n_video"] < 40
    # bounds are reported for the admitted set only
    assert row["analytic_max_jitter"] > 0


def test_zero_population_yields_zero_bounds():
    row = _static_bss(n_voice=0, n_video=0, seed=1, sim_time=0.5)
    assert row["n_voice"] == 0 and row["n_video"] == 0
    assert row["analytic_max_jitter"] == 0.0
    assert row["simulated_max_jitter"] == 0.0
    assert row["analytic_max_delay"] == 0.0


def test_voice_only_population():
    row = _static_bss(n_voice=2, n_video=0, seed=1, sim_time=3.0)
    assert row["n_voice"] == 2
    assert row["analytic_max_delay"] == 0.0
    assert row["simulated_max_jitter"] <= row["analytic_max_jitter"]


def test_sweep_progress_callback_invoked():
    messages = []
    run_sweep(
        ["proposed"], loads=[0.5], seeds=[1], sim_time=4.0, warmup=1.0,
        progress=messages.append,
    )
    assert len(messages) == 1
    assert "proposed" in messages[0]
