"""Tests for the ``python -m repro`` command-line front end."""

import pytest

from repro.__main__ import main


def test_tables_command(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "Table II" in out
    assert "0-3" in out  # the paper's example window


def test_quick_command_runs_short_scenario(capsys):
    assert main(["quick", "--time", "6", "--seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "voice_delay_mean" in out
    assert "dropping_probability" in out


def test_quick_command_scheme_choice(capsys):
    assert main(["quick", "--time", "6", "--scheme", "conventional"]) == 0
    out = capsys.readouterr().out
    assert "scheme: conventional" in out


def test_fig5_command(capsys):
    assert main(["fig5", "--time", "4"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 5" in out
    assert "jitter bound" in out


def test_sweep_command_prints_all_figures(capsys):
    assert main(["sweep", "--loads", "0.5", "--seeds", "1", "--time", "8"]) == 0
    out = capsys.readouterr().out
    for name in ("fig6", "fig7", "fig8", "fig9", "fig10", "fig11"):
        assert name in out
    assert "dropping_probability" in out


def test_invalid_scheme_rejected():
    with pytest.raises(SystemExit):
        main(["quick", "--scheme", "bogus"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])
