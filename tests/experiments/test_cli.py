"""Tests for the ``python -m repro`` command-line front end."""

import pytest

from repro.__main__ import main


def test_tables_command(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "Table II" in out
    assert "0-3" in out  # the paper's example window


def test_quick_command_runs_short_scenario(capsys):
    assert main(["quick", "--time", "6", "--seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "voice_delay_mean" in out
    assert "dropping_probability" in out


def test_quick_command_scheme_choice(capsys):
    assert main(["quick", "--time", "6", "--scheme", "conventional"]) == 0
    out = capsys.readouterr().out
    assert "scheme: conventional" in out


def test_fig5_command(capsys):
    assert main(["fig5", "--time", "4"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 5" in out
    assert "jitter bound" in out


def test_sweep_command_prints_all_figures(capsys):
    assert main(["sweep", "--loads", "0.5", "--seeds", "1", "--time", "8"]) == 0
    out = capsys.readouterr().out
    for name in ("fig6", "fig7", "fig8", "fig9", "fig10", "fig11"):
        assert name in out
    assert "dropping_probability" in out


def test_sweep_parallel_workers_and_cache(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    args = ["sweep", "--loads", "0.5", "--seeds", "1", "--time", "8",
            "--schemes", "proposed", "conventional", "--workers", "2"]
    assert main(args) == 0
    err = capsys.readouterr().err
    assert "workers=2" in err
    assert (tmp_path / ".repro-cache" / "results").is_dir()

    # re-running the same grid is served entirely from the cache
    assert main(args) == 0
    err = capsys.readouterr().err
    assert "2 cached" in err
    assert "0 simulated" in err


def test_sweep_no_cache_writes_no_entries(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["sweep", "--loads", "0.5", "--seeds", "1", "--time", "8",
                 "--schemes", "proposed", "--no-cache"]) == 0
    assert not (tmp_path / ".repro-cache" / "results").exists()


def test_sweep_resume_skips_journaled_points(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    base = ["sweep", "--loads", "0.5", "--seeds", "1", "--time", "8",
            "--schemes", "proposed", "--no-cache"]
    assert main(base) == 0
    capsys.readouterr()
    assert main(base + ["--resume"]) == 0
    err = capsys.readouterr().err
    assert "1 resumed" in err
    assert "0 simulated" in err


def test_sweep_out_archives_rows(tmp_path, monkeypatch):
    from repro.experiments import load_results

    monkeypatch.chdir(tmp_path)
    out = tmp_path / "rows.jsonl"
    assert main(["sweep", "--loads", "0.5", "--seeds", "1", "--time", "8",
                 "--schemes", "proposed", "--no-cache", "--out", str(out)]) == 0
    rows = load_results(out)
    assert len(rows) == 1
    assert rows[0]["scheme"] == "proposed"


def test_invalid_scheme_rejected():
    with pytest.raises(SystemExit):
        main(["quick", "--scheme", "bogus"])


def test_missing_command_prints_help(capsys):
    assert main([]) == 0
    assert "usage:" in capsys.readouterr().out
