"""The archived reproducer corpus must replay its breaches forever.

Every fixture under ``tests/faults/reproducers/`` is a minimal genome
a past redteam campaign found, shrank and archived, together with the
exact verdict it produced.  Replaying re-evaluates the genome under
the fixture's own settings and objective and demands the identical
verdict — breached flag, score, signature and metrics — so a behavior
change that silently un-reproduces (or reshapes) a known breach fails
here, not in the field.
"""

import json
import pathlib

import pytest

from repro.redteam import (
    REPRODUCER_SCHEMA,
    Reproducer,
    load_reproducers,
    replay_reproducer,
    reproducer_name,
)

CORPUS_DIR = pathlib.Path(__file__).parent / "reproducers"
CORPUS = load_reproducers(CORPUS_DIR)


def test_corpus_is_not_empty():
    """The repo ships at least one archived breach per surface."""
    assert CORPUS, f"no reproducer fixtures in {CORPUS_DIR}"
    assert {rep.genome.surface for rep in CORPUS} == {"bss", "ess"}


@pytest.mark.parametrize(
    "rep", CORPUS, ids=[rep.name for rep in CORPUS]
)
def test_fixture_is_well_formed(rep):
    assert rep.name == reproducer_name(rep.genome)
    assert rep.verdict.breached
    assert rep.verdict.signature
    # the stored file round-trips through the dataclasses byte-exactly
    path = CORPUS_DIR / f"{rep.name}.json"
    data = json.loads(path.read_text())
    assert data["schema"] == REPRODUCER_SCHEMA
    assert Reproducer.from_dict(data) == rep
    assert json.dumps(data, indent=2, sort_keys=True) + "\n" == (
        path.read_text()
    )


@pytest.mark.parametrize(
    "rep", CORPUS, ids=[rep.name for rep in CORPUS]
)
def test_fixture_replays_its_recorded_verdict(rep):
    ok, fresh = replay_reproducer(rep)
    assert ok, (
        f"{rep.name} no longer reproduces its archived breach:\n"
        f"  recorded: {rep.verdict.to_dict()}\n"
        f"  fresh:    {fresh.to_dict()}"
    )


def test_rejects_foreign_schema(tmp_path):
    with pytest.raises(ValueError, match="schema"):
        Reproducer.from_dict({"schema": "repro/other/1"})
