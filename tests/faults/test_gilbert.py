"""Gilbert–Elliott model: interface, burstiness, stationary behaviour."""

import numpy as np
import pytest

from repro.faults import GilbertElliottModel, GilbertElliottParams

#: moderately lossy reference channel: pi_bad = 1/6, mean bad burst of 4
PARAMS = GilbertElliottParams(
    p_good_to_bad=0.05, p_bad_to_good=0.25, ber_good=0.0, ber_bad=5e-4
)
FRAME_BITS = 4096


def make_model(seed=2024, params=PARAMS, **kwargs):
    return GilbertElliottModel(params, np.random.default_rng(seed), **kwargs)


class TestInterface:
    def test_drop_in_surface_matches_bit_error_model(self):
        # the Channel consumes exactly these two methods plus .ber
        model = make_model()
        assert model.success_probability(FRAME_BITS) == 1.0  # Good, BER 0
        assert model.frame_survives(FRAME_BITS) in (True, False)
        assert 0.0 <= model.ber < 1.0

    def test_success_probability_tracks_the_current_state(self):
        model = make_model()
        model.bad = True
        assert model.ber == PARAMS.ber_bad
        assert model.success_probability(FRAME_BITS) == pytest.approx(
            (1.0 - PARAMS.ber_bad) ** FRAME_BITS
        )
        model.bad = False
        assert model.ber == PARAMS.ber_good
        assert model.success_probability(FRAME_BITS) == 1.0

    def test_negative_frame_size_rejected(self):
        model = make_model()
        with pytest.raises(ValueError):
            model.success_probability(-1)
        with pytest.raises(ValueError):
            model.expected_loss_rate(-1)

    def test_same_seed_same_sequence(self):
        a, b = make_model(seed=5), make_model(seed=5)
        outcomes_a = [a.frame_survives(FRAME_BITS) for _ in range(500)]
        outcomes_b = [b.frame_survives(FRAME_BITS) for _ in range(500)]
        assert outcomes_a == outcomes_b
        assert a.bad == b.bad and a.frames_in_bad == b.frames_in_bad


class TestLongRunProperties:
    """The satellite property test: sampled behaviour must match the
    stationary analysis within sampling noise (all seeds are fixed, so
    these are deterministic)."""

    N = 30_000

    def test_sampled_loss_rate_matches_stationary_expectation(self):
        model = make_model()
        losses = sum(
            0 if model.frame_survives(FRAME_BITS) else 1 for _ in range(self.N)
        )
        expected = model.expected_loss_rate(FRAME_BITS)
        # pi_bad * loss_bad with these params: ~0.145; burst-correlated
        # samples widen the CI, so allow a generous 2e-2 absolute band
        assert losses / self.N == pytest.approx(expected, abs=2e-2)
        assert expected == pytest.approx(
            PARAMS.stationary_bad * (1.0 - (1.0 - PARAMS.ber_bad) ** FRAME_BITS),
            rel=1e-12,
        )

    def test_sampled_bad_occupancy_matches_stationary_distribution(self):
        model = make_model(seed=7)
        for _ in range(self.N):
            model.frame_survives(FRAME_BITS)
        assert model.frames_seen == self.N
        occupancy = model.frames_in_bad / model.frames_seen
        assert occupancy == pytest.approx(PARAMS.stationary_bad, abs=2e-2)

    def test_losses_arrive_in_bursts_of_the_predicted_length(self):
        # mean Bad-run length in the per-frame state chain is geometric
        # with mean 1/p_bad_to_good = 4 frames — the whole point of the
        # model vs the seed's i.i.d. corruption
        model = make_model(seed=11)
        runs, current = [], 0
        for _ in range(self.N):
            model.frame_survives(FRAME_BITS)
            if model.bad:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert len(runs) > 100  # plenty of bursts to average over
        mean_burst = sum(runs) / len(runs)
        assert mean_burst == pytest.approx(1.0 / PARAMS.p_bad_to_good, rel=0.15)

    def test_start_bad_converges_to_the_same_stationary_rate(self):
        model = make_model(seed=13, start_bad=True)
        for _ in range(self.N):
            model.frame_survives(FRAME_BITS)
        occupancy = model.frames_in_bad / model.frames_seen
        assert occupancy == pytest.approx(PARAMS.stationary_bad, abs=2e-2)
