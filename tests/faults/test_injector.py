"""Frame-type-targeted loss injection: targeting, windows, determinism."""

import numpy as np

from repro.faults import FrameLossInjector, FrameLossRule
from repro.mac import Frame, FrameType


def cf_poll():
    return Frame(FrameType.CF_POLL, src="ap", dest="s1")


def cf_end():
    return Frame(FrameType.CF_END, src="ap", dest="*")


def data():
    return Frame(FrameType.DATA, src="d1", dest="ap", payload_bits=4096)


def make_injector(rules, seed=0):
    return FrameLossInjector(rules, np.random.default_rng(seed))


def test_only_the_targeted_type_is_corrupted():
    inj = make_injector([FrameLossRule("cf_poll", 1.0)])
    assert inj.corrupts(cf_poll(), now=1.0)
    assert not inj.corrupts(cf_end(), now=1.0)
    assert not inj.corrupts(data(), now=1.0)
    assert inj.injected == {"cf_poll": 1}


def test_probability_zero_never_fires():
    inj = make_injector([FrameLossRule("cf_poll", 0.0)])
    assert not any(inj.corrupts(cf_poll(), now=1.0) for _ in range(100))
    assert inj.injected == {}
    assert inj.considered == 100  # the rule matched even though inert


def test_time_window_is_honoured():
    inj = make_injector([FrameLossRule("cf_end", 1.0, start=2.0, end=5.0)])
    assert not inj.corrupts(cf_end(), now=1.0)
    assert inj.corrupts(cf_end(), now=2.0)
    assert inj.corrupts(cf_end(), now=4.9)
    assert not inj.corrupts(cf_end(), now=5.0)


def test_independent_rules_keep_separate_counters():
    inj = make_injector(
        [FrameLossRule("cf_poll", 1.0), FrameLossRule("cf_end", 1.0)]
    )
    inj.corrupts(cf_poll(), now=0.0)
    inj.corrupts(cf_end(), now=0.0)
    inj.corrupts(cf_end(), now=0.0)
    assert inj.injected == {"cf_poll": 1, "cf_end": 2}


def test_same_seed_same_decisions():
    rules = [FrameLossRule("cf_poll", 0.3)]
    a, b = make_injector(rules, seed=42), make_injector(rules, seed=42)
    frames = [cf_poll() for _ in range(200)]
    decisions_a = [a.corrupts(f, now=1.0) for f in frames]
    decisions_b = [b.corrupts(f, now=1.0) for f in frames]
    assert decisions_a == decisions_b
    assert any(decisions_a) and not all(decisions_a)  # actually sampling


def test_unmatched_frames_cost_no_rng_draws():
    # data frames must not perturb the injection stream: the stream
    # only advances on matching, active rules
    rules = [FrameLossRule("cf_poll", 0.3)]
    a, b = make_injector(rules, seed=9), make_injector(rules, seed=9)
    seq_a = []
    for _ in range(50):
        a.corrupts(data(), now=1.0)  # no-op draw-wise
        seq_a.append(a.corrupts(cf_poll(), now=1.0))
    seq_b = [b.corrupts(cf_poll(), now=1.0) for _ in range(50)]
    assert seq_a == seq_b
