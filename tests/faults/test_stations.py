"""Station fault driver: scheduling, targeting, recovery semantics."""

import numpy as np

from repro.faults import StationFault, StationFaultDriver
from repro.sim import Simulator
from repro.traffic import TrafficKind


class StubStation:
    """Records fault()/fault_cleared() calls; mimics the driver-facing
    surface of RealTimeStation."""

    def __init__(self, sid, kind=TrafficKind.VOICE, admitted=True):
        self.station_id = sid
        self.kind = kind
        self.admitted = admitted
        self.radio_down = False
        self.eof = False
        self.events = []

    def fault(self, crash=False):
        self.radio_down = True
        self.events.append(("fault", "crash" if crash else "freeze"))

    def fault_cleared(self):
        self.radio_down = False
        self.events.append(("cleared",))


def make_bss(*stations):
    sim = Simulator()
    registry = {st.station_id: st for st in stations}
    return sim, registry


def make_driver(sim, registry, faults, seed=0):
    return StationFaultDriver(sim, registry, faults, np.random.default_rng(seed))


def test_fault_fires_at_its_scheduled_time():
    sim, registry = make_bss(StubStation("v0"))
    driver = make_driver(sim, registry, [StationFault(at=2.0, mode="crash")])
    sim.run()
    assert driver.applied == [(2.0, "v0", "crash")]
    assert driver.crashes == 1 and driver.freezes == 0
    assert registry["v0"].events == [("fault", "crash")]
    assert registry["v0"].radio_down


def test_kind_filter_only_hits_matching_stations():
    sim, registry = make_bss(
        StubStation("d0", kind=TrafficKind.VIDEO),
        StubStation("v0", kind=TrafficKind.VOICE),
    )
    driver = make_driver(
        sim, registry, [StationFault(at=1.0, kind="video", mode="freeze")]
    )
    sim.run()
    assert driver.applied == [(1.0, "d0", "freeze")]
    assert not registry["v0"].radio_down


def test_fault_with_no_eligible_victim_is_skipped():
    down = StubStation("v0")
    down.radio_down = True
    unadmitted = StubStation("v1", admitted=False)
    ended = StubStation("v2")
    ended.eof = True
    sim, registry = make_bss(down, unadmitted, ended)
    driver = make_driver(sim, registry, [StationFault(at=1.0)])
    sim.run()
    assert driver.skipped == 1
    assert driver.applied == []


def test_bounded_fault_recovers_after_its_duration():
    sim, registry = make_bss(StubStation("v0"))
    driver = make_driver(
        sim, registry, [StationFault(at=1.0, mode="freeze", duration=2.0)]
    )
    sim.run()
    assert driver.freezes == 1 and driver.recoveries == 1
    assert registry["v0"].events == [("fault", "freeze"), ("cleared",)]
    assert not registry["v0"].radio_down


def test_unbounded_fault_never_recovers():
    sim, registry = make_bss(StubStation("v0"))
    driver = make_driver(
        sim, registry, [StationFault(at=1.0, mode="crash", duration=None)]
    )
    sim.run()
    assert driver.recoveries == 0
    assert registry["v0"].radio_down


def test_departed_station_is_not_recovered():
    sim, registry = make_bss(StubStation("v0"))
    driver = make_driver(
        sim, registry, [StationFault(at=1.0, duration=2.0)]
    )
    victim = registry["v0"]
    sim.call_at(2.0, lambda: registry.pop("v0"))  # call tears down mid-fault
    sim.run()
    assert driver.recoveries == 0
    assert victim.events == [("fault", "freeze")]


def test_ended_call_is_not_recovered():
    sim, registry = make_bss(StubStation("v0"))
    driver = make_driver(
        sim, registry, [StationFault(at=1.0, duration=2.0)]
    )

    def end_call():
        registry["v0"].eof = True

    sim.call_at(2.0, end_call)
    sim.run()
    assert driver.recoveries == 0


def test_victim_choice_is_seed_deterministic():
    faults = [StationFault(at=1.0), StationFault(at=2.0), StationFault(at=3.0)]

    def run_once():
        sim, registry = make_bss(
            StubStation("v0"), StubStation("v1"), StubStation("v2")
        )
        driver = make_driver(sim, registry, faults, seed=17)
        sim.run()
        return driver.applied

    assert run_once() == run_once()
