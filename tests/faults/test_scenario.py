"""End-to-end fault scenarios through BssScenario.

These are the deterministic satellite tests for the full degradation
loop: injected churn must drive evict -> reclaim -> recover -> re-admit
without ever breaking a structural invariant, and an *empty* plan must
arm the hardened semantics without injecting anything.
"""

import dataclasses

import pytest

from repro.experiments.config import sweep_config
from repro.faults import FaultPlan
from repro.faults.chaos import fault_mix
from repro.network import BssScenario


def faulted_config(mix_name, sim_time=30.0, warmup=4.0, seed=1):
    return dataclasses.replace(
        sweep_config("proposed", 1.0, seed, sim_time, warmup),
        monitor_invariants=True,
        faults=fault_mix(mix_name, sim_time, warmup),
    )


@pytest.fixture(scope="module")
def churn_results():
    return BssScenario(faulted_config("station-churn")).run()


class TestStationChurn:
    def test_structural_invariants_hold(self, churn_results):
        assert churn_results["invariant_violations"] == []

    def test_faults_were_actually_applied(self, churn_results):
        f = churn_results["faults"]
        assert f["station_crashes"] + f["station_freezes"] >= 4
        assert f["station_recoveries"] >= 1

    def test_evicted_bandwidth_is_reclaimed(self, churn_results):
        f = churn_results["faults"]
        assert f["evictions"] >= 1
        assert f["reclaimed_bandwidth"] > 0.0

    def test_recovered_station_is_readmitted(self, churn_results):
        f = churn_results["faults"]
        assert f["readmissions"] >= 1
        assert f["readmissions"] <= f["evictions"]

    def test_unreachable_stations_show_up_as_abnormal_nulls(
        self, churn_results
    ):
        # radio-down victims produce unreachable nulls (the poll loop
        # keeps running rather than blocking on the silent station)
        assert churn_results["faults"]["unreachable_nulls"] > 0


class TestControlLoss:
    @pytest.fixture(scope="class")
    def results(self):
        return BssScenario(faulted_config("control-loss", sim_time=20.0)).run()

    def test_structural_invariants_hold(self, results):
        assert results["invariant_violations"] == []

    def test_lost_polls_are_retried_then_escalated(self, results):
        f = results["faults"]
        assert f["poll_retries"] > 0
        assert f["frames_injected"].get("cf_poll", 0) > 0
        # a retried poll usually recovers; losses need 3 bad draws in a
        # row, so retries must dominate abandoned polls
        assert f["poll_retries"] > f["polls_lost"]

    def test_lost_cf_ends_fall_back_to_nav_expiry(self, results):
        f = results["faults"]
        assert f["cf_ends_lost"] > 0
        # most of those losses are the injector's doing (the base BER
        # contributes a handful of its own corruptions on top)
        assert f["frames_injected"].get("cf_end", 0) > 0
        assert f["cf_ends_lost"] >= f["frames_injected"]["cf_end"]


class TestEmptyPlanArmsHardeningOnly:
    @pytest.fixture(scope="class")
    def results(self):
        return BssScenario(
            dataclasses.replace(
                sweep_config("proposed", 1.0, 1, 10.0, 2.0),
                monitor_invariants=True,
                faults=FaultPlan(),
            )
        ).run()

    def test_nothing_is_injected(self, results):
        f = results["faults"]
        assert f["evictions"] == 0
        assert f["readmissions"] == 0
        assert f["reclaimed_bandwidth"] == 0.0
        assert f["ghost_polls"] == 0
        assert f["unreachable_nulls"] == 0
        assert "frames_injected" not in f  # no injector even attached
        assert "station_crashes" not in f  # no driver either

    def test_structural_invariants_hold(self, results):
        assert results["invariant_violations"] == []


def test_plan_free_run_carries_no_degradation_report():
    results = BssScenario(sweep_config("proposed", 1.0, 1, 8.0, 2.0)).run()
    assert "faults" not in results
