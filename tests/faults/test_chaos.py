"""Chaos harness: mixes, grids, report aggregation and gating."""

import json

import pytest

from repro.faults import chaos
from repro.faults.chaos import (
    CHAOS_TIERS,
    MIX_NAMES,
    ChaosTierSpec,
    chaos_grid,
    fault_mix,
    run_chaos,
)

TINY = ChaosTierSpec(
    name="tiny",
    description="two-mix fixture tier",
    schemes=("proposed",),
    loads=(1.0,),
    seeds=(1,),
    sim_time=10.0,
    warmup=2.0,
    mixes=("baseline", "control-loss"),
)


class FakeExecutor:
    """Returns pre-baked rows in input order, like SweepExecutor."""

    def __init__(self, rows):
        self.rows = list(rows)
        self.configs = None

    def run(self, configs):
        self.configs = list(configs)
        assert len(self.configs) == len(self.rows)
        return self.rows

    def summary(self):
        return {"workers": 1, "total_points": len(self.rows)}


def fake_row(violations=0, breaches=(), delivered=90, lost=10, **counters):
    faults = dict(counters)
    faults["qos_breaches"] = list(breaches)
    faults.setdefault("reclaimed_bandwidth", 0.0)
    return {
        "invariant_violations": [{"kind": "x"}] * violations,
        "faults": faults,
        "voice_delivered": delivered,
        "voice_losses": lost,
    }


class TestMixes:
    def test_every_named_mix_builds(self):
        for name in MIX_NAMES:
            plan = fault_mix(name, 30.0, 4.0)
            assert plan.injects_anything == (name != "baseline")

    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError):
            fault_mix("meteor-strike", 30.0, 4.0)

    def test_combined_mix_exercises_all_three_families(self):
        plan = fault_mix("combined", 30.0, 4.0)
        assert plan.gilbert_elliott is not None
        assert plan.frame_loss and plan.station_faults

    def test_churn_schedule_lands_inside_the_measured_window(self):
        sim_time, warmup = 30.0, 4.0
        plan = fault_mix("station-churn", sim_time, warmup)
        for fault in plan.station_faults:
            assert warmup < fault.at < sim_time


class TestGrid:
    def test_grid_points_property_matches_grid_length(self):
        assert len(chaos_grid(TINY)) == TINY.grid_points == 2
        smoke = CHAOS_TIERS["smoke"]
        assert len(chaos_grid(smoke)) == smoke.grid_points

    def test_grid_configs_carry_plans_and_armed_monitors(self):
        pairs = chaos_grid(TINY)
        assert [mix for mix, _ in pairs] == ["baseline", "control-loss"]
        for _, cfg in pairs:
            assert cfg.monitor_invariants
            assert cfg.faults is not None
        assert not pairs[0][1].faults.injects_anything
        assert pairs[1][1].faults.injects_anything

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError):
            chaos_grid("nope")


class TestReportGating:
    def test_clean_run_passes(self):
        report = run_chaos(
            TINY,
            executor=FakeExecutor(
                [fake_row(), fake_row(poll_retries=3, polls_lost=1)]
            ),
        )
        assert report.passed and report.structural_clean
        assert report.baseline_clean
        assert report.grid_rows == 2
        by_name = {m.name: m for m in report.mixes}
        assert by_name["control-loss"].counters["poll_retries"] == 3
        assert by_name["control-loss"].counters["polls_lost"] == 1
        assert by_name["baseline"].rt_delivery_ratio == pytest.approx(0.9)

    def test_breach_under_injection_is_reported_not_gated(self):
        breach = {
            "station": "v0", "kind": "voice",
            "measured": 0.06, "budget": 0.03,
        }
        report = run_chaos(
            TINY,
            executor=FakeExecutor([fake_row(), fake_row(breaches=[breach])]),
        )
        assert report.passed  # degradation under faults is expected
        injected = report.mixes[1]
        assert injected.qos_breaches == 1
        assert injected.worst_breach_ratio == pytest.approx(2.0)

    def test_baseline_breach_fails_the_gate(self):
        breach = {"station": "v0", "kind": "voice",
                  "measured": 0.05, "budget": 0.03}
        report = run_chaos(
            TINY,
            executor=FakeExecutor([fake_row(breaches=[breach]), fake_row()]),
        )
        assert not report.baseline_clean
        assert not report.passed
        assert report.structural_clean

    def test_structural_violation_fails_every_mix(self):
        report = run_chaos(
            TINY,
            executor=FakeExecutor([fake_row(), fake_row(violations=2)]),
        )
        assert not report.structural_clean
        assert not report.passed
        assert report.mixes[1].invariant_violations == 2

    def test_reclaimed_bandwidth_is_summed(self):
        report = run_chaos(
            TINY,
            executor=FakeExecutor(
                [fake_row(), fake_row(evictions=2, readmissions=1,
                                      reclaimed_bandwidth=0.04)]
            ),
        )
        injected = report.mixes[1]
        assert injected.counters["evictions"] == 2
        assert injected.counters["readmissions"] == 1
        assert injected.reclaimed_bandwidth == pytest.approx(0.04)


class TestReportArtifact:
    def make_report(self):
        return run_chaos(TINY, executor=FakeExecutor([fake_row(), fake_row()]))

    def test_save_writes_loadable_json(self, tmp_path):
        report = self.make_report()
        path = report.save(tmp_path / "sub" / "report.json")
        data = json.loads(path.read_text())
        assert data["passed"] is True
        assert data["tier"] == "tiny"
        assert [m["name"] for m in data["mixes"]] == list(TINY.mixes)
        assert data["telemetry"]["workers"] == 1

    def test_render_summarizes_each_mix(self):
        text = self.make_report().render()
        assert "PASSED" in text
        for name in TINY.mixes:
            assert f"[{name}]" in text

    def test_every_summed_counter_survives_serialization(self):
        data = self.make_report().to_dict()
        for mix in data["mixes"]:
            assert set(chaos._SUMMED_COUNTERS) <= set(mix["counters"])
