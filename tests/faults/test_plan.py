"""FaultPlan serialization: validation, round-trips, config identity."""

import dataclasses
import json

import pytest

from repro.exec import config_key
from repro.faults import (
    FaultPlan,
    FrameLossRule,
    GilbertElliottParams,
    StationFault,
)
from repro.network.bss import ScenarioConfig


class TestGilbertElliottParams:
    def test_stationary_bad_formula(self):
        p = GilbertElliottParams(p_good_to_bad=0.02, p_bad_to_good=0.18)
        assert p.stationary_bad == pytest.approx(0.02 / 0.20)

    @pytest.mark.parametrize("field", ["p_good_to_bad", "p_bad_to_good"])
    @pytest.mark.parametrize("value", [0.0, -0.1, 1.5])
    def test_transition_probabilities_validated(self, field, value):
        kwargs = {"p_good_to_bad": 0.1, "p_bad_to_good": 0.1, field: value}
        with pytest.raises(ValueError):
            GilbertElliottParams(**kwargs)

    @pytest.mark.parametrize("field", ["ber_good", "ber_bad"])
    @pytest.mark.parametrize("value", [-1e-6, 1.0])
    def test_bers_validated(self, field, value):
        kwargs = {"p_good_to_bad": 0.1, "p_bad_to_good": 0.1, field: value}
        with pytest.raises(ValueError):
            GilbertElliottParams(**kwargs)


class TestFrameLossRule:
    def test_active_window(self):
        rule = FrameLossRule("cf_poll", 0.5, start=1.0, end=2.0)
        assert not rule.active(0.5)
        assert rule.active(1.0)
        assert rule.active(1.999)
        assert not rule.active(2.0)

    def test_open_ended_window(self):
        assert FrameLossRule("ack", 0.5).active(1e9)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"probability": -0.1},
            {"probability": 1.1},
            {"probability": 0.5, "start": -1.0},
            {"probability": 0.5, "start": 2.0, "end": 2.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FrameLossRule("cf_poll", **kwargs)


class TestStationFault:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"at": -1.0},
            {"at": 1.0, "mode": "explode"},
            {"at": 1.0, "duration": 0.0},
            {"at": 1.0, "kind": "data"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            StationFault(**kwargs)


def full_plan() -> FaultPlan:
    return FaultPlan(
        gilbert_elliott=GilbertElliottParams(
            p_good_to_bad=0.02, p_bad_to_good=0.2, ber_good=1e-6, ber_bad=2e-4
        ),
        frame_loss=(
            FrameLossRule("cf_poll", 0.2),
            FrameLossRule("cf_end", 0.5, start=3.0, end=9.0),
        ),
        station_faults=(
            StationFault(at=5.0, mode="freeze", duration=2.0),
            StationFault(at=8.0, mode="crash", duration=None, kind="voice"),
        ),
    )


class TestFaultPlan:
    def test_empty_plan_injects_nothing(self):
        assert not FaultPlan().injects_anything
        assert full_plan().injects_anything

    def test_lists_coerced_to_tuples(self):
        plan = FaultPlan(
            frame_loss=[FrameLossRule("ack", 0.1)],
            station_faults=[StationFault(at=1.0)],
        )
        assert isinstance(plan.frame_loss, tuple)
        assert isinstance(plan.station_faults, tuple)

    def test_roundtrips_through_json(self):
        plan = full_plan()
        rebuilt = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert rebuilt == plan
        assert isinstance(rebuilt.gilbert_elliott, GilbertElliottParams)
        assert all(isinstance(r, FrameLossRule) for r in rebuilt.frame_loss)
        assert all(isinstance(f, StationFault) for f in rebuilt.station_faults)

    def test_empty_plan_roundtrips(self):
        plan = FaultPlan()
        assert FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict()))) == plan


class TestScenarioConfigIntegration:
    def test_default_config_has_no_plan(self):
        cfg = ScenarioConfig()
        assert cfg.faults is None
        assert cfg.to_dict()["faults"] is None

    def test_faulted_config_roundtrips_through_json(self):
        cfg = dataclasses.replace(ScenarioConfig(), faults=full_plan())
        rebuilt = ScenarioConfig.from_dict(json.loads(json.dumps(cfg.to_dict())))
        assert rebuilt == cfg
        assert isinstance(rebuilt.faults, FaultPlan)

    def test_plan_is_part_of_the_content_address(self):
        base = ScenarioConfig()
        armed = dataclasses.replace(base, faults=FaultPlan())
        injecting = dataclasses.replace(base, faults=full_plan())
        keys = {config_key(base), config_key(armed), config_key(injecting)}
        assert len(keys) == 3  # None, empty plan, full plan all differ
