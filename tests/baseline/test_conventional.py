"""Integration tests for the conventional 802.11 baseline AP."""

import pytest

from repro.baseline import ConventionalAccessPoint, ConventionalApConfig
from repro.mac import DcfTransmitter, Nav, RealTimeStation, StandardBEB
from repro.phy import BitErrorModel, Channel, PhyTiming
from repro.sim import RandomStreams, Simulator
from repro.traffic import Packet, TrafficKind, VideoParams, VoiceParams


class World:
    def __init__(self, seed=0, **cfg):
        self.sim = Simulator()
        self.timing = PhyTiming()
        self.streams = RandomStreams(seed)
        self.channel = Channel(self.sim, BitErrorModel(0.0, self.streams.get("ch")))
        self.nav = Nav()
        self.ap = ConventionalAccessPoint(
            self.sim, self.channel, self.timing, self.nav,
            ConventionalApConfig(**cfg),
        )

    def make_station(self, sid, qos=None, handoff=False):
        qos = qos or VoiceParams(rate=25, max_jitter=0.05, packet_bits=512 * 8)
        dcf = DcfTransmitter(
            self.sim, self.channel, self.timing, StandardBEB(8),
            self.streams.get(f"dcf/{sid}"), sid, self.nav,
        )
        sta = RealTimeStation(
            self.sim, sid, dcf, "ap", TrafficKind.VOICE, qos, is_handoff=handoff,
        )
        self.ap.register_station(sta)
        return sta

    def pkt(self, sid):
        return Packet(
            created=self.sim.now, bits=512 * 8, source_id=sid,
            kind=TrafficKind.VOICE, seq=0, deadline=self.sim.now + 1.0,
        )


def test_simple_admission_accepts_until_utilization_cap():
    w = World()
    sta = w.make_station("v0")
    sta.start_admission_request()
    w.sim.run(until=0.1)
    assert sta.admitted
    assert w.ap.admitted_count == 1


def test_admission_rejects_past_cfp_share():
    w = World()
    # capacity in packets/s is cfp_share / packet_time
    cap = w.ap.cfp_share / w.ap.packet_time
    heavy = VoiceParams(rate=cap * 0.7, max_jitter=0.05, packet_bits=512 * 8)
    a = w.make_station("a", qos=heavy)
    b = w.make_station("b", qos=heavy)
    a.start_admission_request()
    b.start_admission_request()
    w.sim.run(until=0.2)
    assert w.ap.blocked_new == 1
    assert a.admitted != b.admitted


def test_handoff_gets_no_special_treatment():
    """The conventional AP has no reservation: a handoff fails exactly
    where a new call would."""
    w = World()
    cap = w.ap.cfp_share / w.ap.packet_time
    heavy = VoiceParams(rate=cap * 0.7, max_jitter=0.05, packet_bits=512 * 8)
    a = w.make_station("a", qos=heavy)
    h = w.make_station("h", qos=heavy, handoff=True)
    a.start_admission_request()
    w.sim.run(until=0.1)
    h.start_admission_request()
    w.sim.run(until=0.3)
    assert w.ap.rejected_handoff == 1


def test_cfp_starts_only_on_superframe_boundary():
    w = World()
    sta = w.make_station("v0")
    sta.start_admission_request()
    starts = []
    orig = w.ap.coordinator.start_cfp

    def spy(scheduler, max_dur, on_end):
        starts.append(w.sim.now)
        orig(scheduler, max_dur, on_end)

    w.ap.coordinator.start_cfp = spy
    sta.buffer.append(w.pkt("v0"))
    w.sim.run(until=0.40)
    assert starts, "no CFP started"
    sf = w.ap.config.superframe
    for t in starts:
        # boundaries are multiples of the superframe (seize adds < 1 ms)
        phase = t % sf
        assert phase < 0.002 or sf - phase < 0.002


def test_round_robin_serves_and_removes_drained_stations():
    w = World()
    a = w.make_station("a")
    b = w.make_station("b")
    for sta in (a, b):
        sta.start_admission_request()
    w.sim.run(until=0.1)
    pa, pb = w.pkt("a"), w.pkt("b")
    a.buffer.append(pa)
    b.buffer.append(pb)
    # stations signal pending traffic like admitted stations do
    w.ap.request_table.extend(s for s in ("a", "b") if s not in w.ap.request_table)
    w.sim.run(until=0.4)
    assert pa.completed is not None
    assert pb.completed is not None
    assert w.ap.request_table == []


def test_delay_includes_wait_for_superframe_boundary():
    """A packet arriving mid-CP waits for the next fixed CFP — the
    latency the proposed scheme's on-demand CFP removes."""
    w = World()
    sta = w.make_station("v0")
    sta.start_admission_request()
    w.sim.run(until=0.1)
    # place a packet right after a boundary: it waits ~a full superframe
    sf = w.ap.config.superframe
    boundary = (int(w.sim.now / sf) + 1) * sf
    p = []

    def inject():
        pkt = w.pkt("v0")
        p.append(pkt)
        sta.buffer.append(pkt)
        if "v0" not in w.ap.request_table:
            w.ap.request_table.append("v0")

    w.sim.call_at(boundary + 0.002, inject)
    w.sim.run(until=boundary + 3 * sf)
    assert p[0].completed is not None
    assert p[0].access_delay() > 0.5 * sf


def test_departed_station_removed_everywhere():
    w = World()
    sta = w.make_station("v0")
    sta.start_admission_request()
    w.sim.run(until=0.1)
    w.ap.station_departed("v0")
    assert "v0" not in w.ap.admitted
    assert "v0" not in w.ap.request_table
    assert "v0" not in w.ap.coordinator.stations
    w.ap.station_departed("v0")  # idempotent


def test_unknown_qos_type_rejected():
    w = World()
    with pytest.raises(TypeError):
        w.ap._declared_rate("garbage")


def test_video_rate_uses_avg_rate():
    w = World()
    q = VideoParams(avg_rate=60, burstiness=5, max_delay=0.05)
    assert w.ap._declared_rate(q) == 60


def test_config_validation():
    with pytest.raises(ValueError):
        ConventionalApConfig(superframe=0)
    with pytest.raises(ValueError):
        ConventionalApConfig(cfp_max=0.08, superframe=0.075)
    with pytest.raises(ValueError):
        ConventionalApConfig(rt_packet_bits=0)
