"""Capacity-planning queries: values, provenance, error surfaces."""

import json

import pytest

from repro.exec import ResultCache, config_key
from repro.exec.hashing import KEY_FORMAT
from repro.experiments import sweep_config
from repro.serve import SurfaceIndex, answer_query
from repro.serve.queries import QueryError


def _row(load, seed):
    """Blocking rises linearly with load so the admissibility frontier
    sits at a hand-computable coordinate."""
    return {
        "blocking_probability": 0.01 * load,
        "dropping_probability": 0.001 * load,
        "voice_delay_mean": 0.004 * load,
        "calls_admitted_new": 100 - 10 * load,
        "calls_blocked": 10 * load,
        "calls_dropped": 2.0 * load,
        "call_attempts_handoff": 20.0,
        "ess": {"handoffs_injected": 5.0 * load},
    }


@pytest.fixture
def index(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    for load in (0.5, 1.0, 2.0):
        for seed in (1, 2):
            cfg = sweep_config("proposed", load, seed, 8.0, 1.0)
            cache.put(config_key(cfg), _row(load, seed), cfg)
    return SurfaceIndex.from_cache(cache)


class TestOperatingPoint:
    def test_exact_point_with_provenance(self, index):
        result = answer_query(
            index, "operating_point", {"scheme": "proposed", "load": 1.0}
        )
        assert result.values["blocking_probability"] == pytest.approx(0.01)
        prov = result.provenance
        assert prov["mode"] == "exact"
        assert prov["key_format"] == KEY_FORMAT
        assert len(prov["cache_keys"]) == 2

    def test_metric_subset_and_missing_metric(self, index):
        result = answer_query(
            index,
            "operating_point",
            {"scheme": "proposed", "load": 1.0,
             "metrics": "blocking_probability"},
        )
        assert list(result.values) == ["blocking_probability"]
        with pytest.raises(QueryError) as err:
            answer_query(
                index,
                "operating_point",
                {"scheme": "proposed", "load": 1.0, "metrics": "nope"},
            )
        assert err.value.code == "missing_metric"
        assert err.value.detail["missing"] == ["nope"]

    def test_exact_flag_refuses_interpolation(self, index):
        with pytest.raises(QueryError) as err:
            answer_query(
                index,
                "operating_point",
                {"scheme": "proposed", "load": 0.75, "exact": "true"},
            )
        assert err.value.code == "missing_points"

    def test_responses_are_byte_deterministic(self, index):
        params = {"scheme": "proposed", "load": 1.25}
        a = answer_query(index, "operating_point", params).to_dict()
        b = answer_query(index, "operating_point", params).to_dict()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_scheme_is_required(self, index):
        with pytest.raises(QueryError) as err:
            answer_query(index, "operating_point", {"load": 1.0})
        assert err.value.code == "bad_request"


class TestAdmissibleCalls:
    def test_frontier_is_bisected_between_grid_loads(self, index):
        # blocking = 0.01*load crosses the 0.015 ceiling at load = 1.5
        result = answer_query(
            index,
            "admissible_calls",
            {"scheme": "proposed",
             "constraints": {"blocking_probability": 0.015}},
        )
        assert result.values["admissible"] is True
        assert result.values["saturated"] is False
        assert result.values["max_load"] == pytest.approx(1.5, abs=1e-4)
        assert "calls_admitted_new" in result.values["at_max_load"]

    def test_saturated_when_no_load_violates(self, index):
        result = answer_query(
            index,
            "admissible_calls",
            {"scheme": "proposed",
             "constraints": {"blocking_probability": 0.5}},
        )
        assert result.values["saturated"] is True
        assert result.values["max_load"] == 2.0

    def test_not_admissible_at_lightest_load(self, index):
        result = answer_query(
            index,
            "admissible_calls",
            {"scheme": "proposed",
             "constraints": {"blocking_probability": 0.0001}},
        )
        assert result.values["admissible"] is False
        assert result.values["max_load"] is None

    def test_unknown_constraint_metric_errors(self, index):
        with pytest.raises(QueryError) as err:
            answer_query(
                index,
                "admissible_calls",
                {"scheme": "proposed", "constraints": {"nope": 1.0}},
            )
        assert err.value.code == "missing_metric"


class TestHandoffDropRate:
    def test_rate_and_ess_metrics(self, index):
        result = answer_query(
            index, "handoff_drop_rate", {"scheme": "proposed", "load": 1.0}
        )
        assert result.values["handoff_attempts_mean"] == 20.0
        assert result.values["handoff_drop_rate"] == pytest.approx(0.1)
        assert result.values["ess"]["ess.handoffs_injected"] == 5.0


def test_unknown_kind_is_bad_request(index):
    with pytest.raises(QueryError) as err:
        answer_query(index, "telepathy", {"scheme": "proposed"})
    assert err.value.code == "bad_request"
    assert "telepathy" in str(err.value)
