"""Surface index: grouping, interpolation, refusal, back-fill configs."""

import json

import pytest

from repro.exec import ResultCache, config_key
from repro.experiments import sweep_config
from repro.serve import SurfaceIndex
from repro.serve.surface import SurfaceError, flatten_metrics


def _row(load, seed):
    """A fabricated result row whose values are load/seed functions."""
    return {
        "scheme": "proposed",
        "seed": seed,
        "sim_time": 8.0,
        "blocking_probability": 0.01 * load + 0.001 * seed,
        "voice_delay_mean": 0.004 * load,
        "calls_dropped": seed,
        "call_attempts_handoff": 10 * seed,
        "ok": True,
        "analytic_voice_bounds": [0.01, 0.02, 0.03],
        "faults": {"polls_lost": load},
    }


def seed_cache(tmp_path, loads=(0.5, 1.0, 2.0), seeds=(1, 2)):
    cache = ResultCache(tmp_path / "cache")
    for load in loads:
        for seed in seeds:
            cfg = sweep_config("proposed", load, seed, 8.0, 1.0)
            cache.put(config_key(cfg), _row(load, seed), cfg)
    return cache


class TestFlattenMetrics:
    def test_numbers_nesting_lists_and_skips(self):
        flat = flatten_metrics(_row(1.0, 1))
        assert flat["blocking_probability"] == pytest.approx(0.011)
        assert flat["faults.polls_lost"] == 1.0
        assert flat["analytic_voice_bounds_count"] == 3.0
        assert flat["analytic_voice_bounds_max"] == 0.03
        assert "scheme" not in flat  # strings skipped
        assert "ok" not in flat  # bools skipped

    def test_mixed_list_is_skipped(self):
        flat = flatten_metrics({"xs": [1, "two"], "empty": []})
        assert flat == {}


class TestIndexing:
    def test_rows_group_into_one_surface(self, tmp_path):
        index = SurfaceIndex.from_cache(seed_cache(tmp_path))
        assert len(index.surfaces) == 1
        (surface,) = index.surfaces.values()
        assert surface.scheme == "proposed"
        assert surface.seeds == {1, 2}
        assert index.rows == 6
        assert surface.axis_values()["load"] == [0.5, 1.0, 2.0]
        assert surface.backfillable

    def test_configless_entries_are_counted_not_fatal(self, tmp_path):
        cache = seed_cache(tmp_path)
        cache.put("deadbeef" * 8, {"x": 1})  # no config attached
        index = SurfaceIndex.from_cache(cache)
        assert index.skipped == 1
        assert index.rows == 6

    def test_aggregates_ignore_insertion_order(self, tmp_path):
        cache = seed_cache(tmp_path)
        entries = list(cache.entries())
        forward, backward = SurfaceIndex(), SurfaceIndex()
        for entry in entries:
            forward.add_entry(*entry)
        for entry in reversed(entries):
            backward.add_entry(*entry)
        at = {"load": 1.25}
        a = forward.find("proposed").lookup(at)
        b = backward.find("proposed").lookup(at)
        assert json.dumps(a.metrics, sort_keys=True) == json.dumps(
            b.metrics, sort_keys=True
        )

    def test_find_prefers_most_rows_and_honours_pin(self, tmp_path):
        cache = seed_cache(tmp_path)
        small = sweep_config("proposed", 1.0, 1, 4.0, 1.0)  # other sim_time
        cache.put(config_key(small), _row(1.0, 1), small)
        index = SurfaceIndex.from_cache(cache)
        assert len(index.surfaces) == 2
        assert index.find("proposed").seeds == {1, 2}
        small_id = next(
            sid
            for sid, s in index.surfaces.items()
            if s.residual["sim_time"] == 4.0
        )
        assert index.find("proposed", small_id).surface_id == small_id
        with pytest.raises(SurfaceError) as err:
            index.find("conventional")
        assert err.value.code == "unknown_surface"


class TestLookup:
    def test_exact_hit_is_the_seed_mean(self, tmp_path):
        surface = SurfaceIndex.from_cache(seed_cache(tmp_path)).find(
            "proposed"
        )
        hit = surface.lookup({"load": 1.0})
        assert hit.mode == "exact"
        # mean over seeds 1 and 2 of 0.01*1.0 + 0.001*seed
        assert hit.metrics["blocking_probability"] == pytest.approx(0.0115)
        assert len(hit.keys) == 2

    def test_midpoint_interpolates_linearly(self, tmp_path):
        surface = SurfaceIndex.from_cache(seed_cache(tmp_path)).find(
            "proposed"
        )
        mid = surface.lookup({"load": 1.5})
        assert mid.mode == "interpolated"
        # halfway between the load=1.0 and load=2.0 seed means
        assert mid.metrics["blocking_probability"] == pytest.approx(0.0165)
        assert mid.provenance()["corners"] == [
            {"load": 1.0, "n_data_stations": 4.0},
            {"load": 2.0, "n_data_stations": 4.0},
        ]

    def test_extrapolation_is_refused(self, tmp_path):
        surface = SurfaceIndex.from_cache(seed_cache(tmp_path)).find(
            "proposed"
        )
        with pytest.raises(SurfaceError) as err:
            surface.lookup({"load": 9.0})
        assert err.value.code == "extrapolation_refused"
        assert err.value.detail["observed"] == [0.5, 2.0]

    def test_require_exact_raises_missing_points(self, tmp_path):
        surface = SurfaceIndex.from_cache(seed_cache(tmp_path)).find(
            "proposed"
        )
        with pytest.raises(SurfaceError) as err:
            surface.lookup({"load": 1.25}, require_exact=True)
        assert err.value.code == "missing_points"
        assert err.value.detail["missing"] == [
            {"load": 1.25, "n_data_stations": 4.0}
        ]

    def test_missing_configs_roundtrip_to_sweep_keys(self, tmp_path):
        """Back-fill configs must hash to the canonical sweep cache keys."""
        surface = SurfaceIndex.from_cache(seed_cache(tmp_path)).find(
            "proposed"
        )
        configs = surface.missing_configs(
            [{"load": 1.25, "n_data_stations": 4.0}]
        )
        assert len(configs) == 2  # one per observed seed
        from repro.network.bss import ScenarioConfig

        keys = {config_key(ScenarioConfig.from_dict(c)) for c in configs}
        expected = {
            config_key(sweep_config("proposed", 1.25, seed, 8.0, 1.0))
            for seed in (1, 2)
        }
        assert keys == expected

    def test_ess_rows_block_backfill(self, tmp_path):
        cache = seed_cache(tmp_path)
        cfg = sweep_config("proposed", 1.0, 7, 8.0, 1.0)
        entry = dict(cfg.to_dict())
        entry["ess"] = {"cell": [0, 0]}
        index = SurfaceIndex.from_cache(cache)
        surface = index.add_entry("f" * 64, entry, _row(1.0, 7))
        assert surface is index.find("proposed")
        assert surface.ess_rows == 1
        assert not surface.backfillable
        assert surface.missing_configs([{"load": 1.5}]) == []
