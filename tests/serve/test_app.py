"""The HTTP serving layer, end to end over a real socket."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.exec import ResultCache, config_key
from repro.experiments import sweep_config
from repro.serve import build_server


def _row(load, seed):
    return {
        "blocking_probability": 0.01 * load,
        "dropping_probability": 0.001 * load,
        "voice_delay_mean": 0.004 * load,
        "calls_dropped": 1.0,
        "call_attempts_handoff": 20.0,
    }


def _stub_point(config):
    """Back-fill unit of work: fabricate the row instead of simulating."""
    return _row(config.load, config.seed)


def _seed(cache_dir, loads=(0.5, 1.0, 2.0), seeds=(1,)):
    cache = ResultCache(cache_dir)
    for load in loads:
        for seed in seeds:
            cfg = sweep_config("proposed", load, seed, 8.0, 1.0)
            cache.put(config_key(cfg), _row(load, seed), cfg)


@pytest.fixture
def server(tmp_path):
    _seed(tmp_path / "cache")
    srv = build_server(
        str(tmp_path / "cache"), port=0, point_fn=_stub_point
    )
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.stop()
    thread.join(timeout=10)


def _get(url):
    """(status, body bytes) without raising on 4xx/5xx."""
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as err:
        return err.code, err.read()


class TestEndpoints:
    def test_healthz(self, server):
        status, body = _get(server.url + "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["surfaces"] == 1
        assert health["backfill"]["enabled"] is True

    def test_surfaces_listing(self, server):
        status, body = _get(server.url + "/surfaces")
        assert status == 200
        listing = json.loads(body)
        (surface,) = listing["surfaces"]
        assert surface["axes"]["load"] == [0.5, 1.0, 2.0]
        assert surface["backfillable"] is True

    def test_unknown_route_is_404(self, server):
        status, body = _get(server.url + "/nope")
        assert status == 404
        assert json.loads(body)["error"]["code"] == "not_found"

    def test_metrics_text_is_parseable(self, server):
        _get(server.url + "/healthz")
        status, body = _get(server.url + "/metrics")
        assert status == 200
        import re

        sample = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.einf+]+$'
        )
        lines = body.decode().splitlines()
        assert lines, "empty exposition"
        for line in lines:
            assert line.startswith("# TYPE ") or sample.match(line), line
        text = body.decode()
        assert "# TYPE serve_requests_total counter" in text
        assert "# TYPE serve_request_seconds histogram" in text
        assert 'le="+Inf"' in text


class TestQueries:
    def test_exact_query_is_byte_identical(self, server):
        url = (
            server.url
            + "/query?kind=operating_point&scheme=proposed&load=1.0"
        )
        first = _get(url)
        second = _get(url)
        assert first[0] == 200
        assert first == second
        result = json.loads(first[1])
        assert result["provenance"]["mode"] == "exact"

    def test_post_json_body(self, server):
        request = urllib.request.Request(
            server.url + "/query",
            data=json.dumps(
                {"kind": "operating_point", "scheme": "proposed",
                 "load": 0.75}
            ).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            result = json.loads(response.read())
        assert result["provenance"]["mode"] == "interpolated"

    def test_extrapolation_is_422(self, server):
        status, body = _get(
            server.url
            + "/query?kind=operating_point&scheme=proposed&load=9.0"
        )
        assert status == 422
        assert json.loads(body)["error"]["code"] == "extrapolation_refused"

    def test_missing_kind_is_400(self, server):
        status, body = _get(server.url + "/query?scheme=proposed")
        assert status == 400


class TestBackfill:
    def test_miss_backfills_then_answers(self, server):
        url = (
            server.url + "/query?kind=operating_point&scheme=proposed"
            "&load=1.5&exact=true"
        )
        status, body = _get(url)
        assert status == 202
        miss = json.loads(body)
        assert miss["status"] == "backfilling"
        assert miss["backfill"]["queued"]
        assert miss["retry_after"] >= 1

        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            status, body = _get(url)
            if status == 200:
                break
            time.sleep(0.05)
        assert status == 200, body
        result = json.loads(body)
        assert result["provenance"]["mode"] == "exact"
        # the stub's fabricated row, now served from the live index
        assert result["values"]["blocking_probability"] == pytest.approx(
            0.015
        )

        _, metrics = _get(server.url + "/metrics")
        assert "serve_backfill_completed 1" in metrics.decode()

    def test_resubmission_dedups_in_flight_keys(self, tmp_path):
        _seed(tmp_path / "cache", loads=(0.5, 2.0))
        slow = threading.Event()

        def stalled_point(config):
            slow.wait(timeout=10)
            return _row(config.load, config.seed)

        srv = build_server(
            str(tmp_path / "cache"), port=0, point_fn=stalled_point
        )
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            url = (
                srv.url + "/query?kind=operating_point&scheme=proposed"
                "&load=1.0&exact=true"
            )
            first = json.loads(_get(url)[1])
            assert first["backfill"]["queued"]
            second = json.loads(_get(url)[1])
            assert not second["backfill"]["queued"]
            assert second["backfill"]["in_flight"]
        finally:
            slow.set()
            srv.stop()
            thread.join(timeout=10)

    def test_no_backfill_miss_is_404(self, tmp_path):
        _seed(tmp_path / "cache")
        srv = build_server(str(tmp_path / "cache"), port=0, backfill=False)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            status, body = _get(
                srv.url + "/query?kind=operating_point&scheme=proposed"
                "&load=1.5&exact=true"
            )
            assert status == 404
            assert json.loads(body)["error"]["code"] == "missing_points"
        finally:
            srv.stop()
            thread.join(timeout=10)

    def test_empty_cache_serves_no_surfaces(self, tmp_path):
        srv = build_server(str(tmp_path / "empty"), port=0, backfill=False)
        try:
            assert srv.index.surfaces == {}
        finally:
            srv.stop()  # must not hang: serve_forever never ran
