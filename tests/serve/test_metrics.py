"""Prometheus 0.0.4 text rendering of the metrics registry."""

from repro.obs import MetricsRegistry
from repro.serve import render_prometheus


def test_counters_gauges_and_type_headers():
    reg = MetricsRegistry()
    reg.counter("requests", endpoint="/query", status=200).inc(3)
    reg.counter("requests", endpoint="/healthz", status=200).inc()
    reg.gauge("depth").set(2.5)
    text = render_prometheus(reg)
    assert text == (
        "# TYPE depth gauge\n"
        "depth 2.5\n"
        "# TYPE requests counter\n"
        'requests{endpoint="/healthz",status="200"} 1\n'
        'requests{endpoint="/query",status="200"} 3\n'
    )


def test_histogram_buckets_are_cumulative_with_inf():
    reg = MetricsRegistry()
    h = reg.histogram("latency", (0.01, 0.1))
    for v in (0.005, 0.05, 0.05, 5.0):
        h.observe(v)
    text = render_prometheus(reg)
    assert 'latency_bucket{le="0.01"} 1' in text
    assert 'latency_bucket{le="0.1"} 3' in text  # cumulative, not 2
    assert 'latency_bucket{le="+Inf"} 4' in text
    assert "latency_count 4" in text
    assert "latency_sum 5.105" in text
    assert "# TYPE latency histogram" in text


def test_label_values_are_escaped():
    reg = MetricsRegistry()
    reg.counter("odd", path='a"b\\c\nd').inc()
    text = render_prometheus(reg)
    assert 'odd{path="a\\"b\\\\c\\nd"} 1' in text


def test_registry_constant_labels_stamp_every_sample():
    reg = MetricsRegistry(bss="b0")
    reg.counter("polls").inc()
    reg.gauge("tokens", kind="voice").set(1.0)
    text = render_prometheus(reg)
    assert 'polls{bss="b0"} 1' in text
    assert 'tokens{bss="b0",kind="voice"} 1' in text


def test_consecutive_renders_are_byte_identical():
    reg = MetricsRegistry()
    reg.counter("z").inc()
    reg.counter("a").inc(2)
    reg.histogram("h", (1.0,)).observe(0.5)
    assert render_prometheus(reg) == render_prometheus(reg)


def test_empty_registry_renders_empty():
    assert render_prometheus(MetricsRegistry()) == ""
