"""Unit tests for the Bianchi / Cali-Conti-Gregori capacity model."""

import pytest

from repro.core import (
    bianchi_tau,
    estimate_stations,
    failure_probability,
    optimal_attempt_probability,
    optimal_cw,
    saturation_throughput,
)
from repro.phy import PhyTiming


class TestBianchiTau:
    def test_single_station_attempts_aggressively(self):
        tau1 = bianchi_tau(1, 32, 5)
        # with no collisions (n=1, pe=0), tau = 2/(W+1)
        assert tau1 == pytest.approx(2 / 33, rel=1e-6)

    def test_tau_decreases_with_n(self):
        taus = [bianchi_tau(n, 32, 5) for n in (2, 5, 10, 20, 50)]
        assert all(a > b for a, b in zip(taus, taus[1:]))

    def test_tau_decreases_with_cw(self):
        assert bianchi_tau(10, 16, 5) > bianchi_tau(10, 128, 5)

    def test_frame_errors_push_tau_down(self):
        assert bianchi_tau(10, 32, 5, pe=0.2) < bianchi_tau(10, 32, 5, pe=0.0)

    def test_fixed_point_consistency(self):
        n, w, m = 15, 32, 5
        tau = bianchi_tau(n, w, m)
        p = failure_probability(tau, n)
        # plug back into tau(p)
        num = 2 * (1 - 2 * p)
        den = (1 - 2 * p) * (w + 1) + p * w * (1 - (2 * p) ** m)
        assert tau == pytest.approx(num / den, rel=1e-4)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            bianchi_tau(0, 32, 5)
        with pytest.raises(ValueError):
            bianchi_tau(5, 0, 5)
        with pytest.raises(ValueError):
            bianchi_tau(5, 32, -1)
        with pytest.raises(ValueError):
            bianchi_tau(5, 32, 5, pe=1.0)


class TestThroughput:
    def test_zero_when_no_attempts(self):
        t = PhyTiming()
        assert saturation_throughput(5, 0.0, t, 8192) == 0.0

    def test_peak_interior_in_tau(self):
        t = PhyTiming()
        n, bits = 20, 8192
        s_low = saturation_throughput(n, 1e-4, t, bits)
        s_opt = saturation_throughput(
            n, optimal_attempt_probability(n, t.data_exchange_time(bits) / t.slot),
            t, bits,
        )
        s_high = saturation_throughput(n, 0.5, t, bits)
        assert s_opt > s_low
        assert s_opt > s_high

    def test_analytic_optimum_near_numeric_peak(self):
        """The closed form 1/(n*sqrt(T'/2)) sits near the true argmax."""
        t = PhyTiming()
        n, bits = 30, 8192
        frame_slots = t.data_exchange_time(bits) / t.slot
        tau_star = optimal_attempt_probability(n, frame_slots)
        s_star = saturation_throughput(n, tau_star, t, bits)
        import numpy as np

        taus = np.linspace(1e-4, 0.2, 400)
        best = max(saturation_throughput(n, x, t, bits) for x in taus)
        assert s_star >= 0.95 * best

    def test_errors_reduce_throughput(self):
        t = PhyTiming()
        tau = 0.02
        assert saturation_throughput(10, tau, t, 8192, pe=0.3) < (
            saturation_throughput(10, tau, t, 8192, pe=0.0)
        )

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            saturation_throughput(0, 0.1, PhyTiming(), 8192)


class TestOptimalCw:
    def test_cw_grows_with_n(self):
        assert optimal_cw(20, 100) > optimal_cw(5, 100)

    def test_cw_grows_with_frame_length(self):
        assert optimal_cw(10, 400) > optimal_cw(10, 50)

    def test_cw_at_least_one(self):
        assert optimal_cw(1, 0.1) >= 1.0

    def test_inverse_relation(self):
        n, T = 12, 150
        p = optimal_attempt_probability(n, T)
        assert optimal_cw(n, T) == pytest.approx(2 / p - 1)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            optimal_attempt_probability(0, 10)
        with pytest.raises(ValueError):
            optimal_attempt_probability(5, 0)


class TestEstimateStations:
    def test_quiet_channel_means_alone(self):
        assert estimate_stations(0.0, 32) == 1.0

    def test_roundtrip_with_bianchi_relation(self):
        """Generate p from a known n, invert, recover n approximately."""
        cw = 64.0
        tau = 2 / (cw + 1)
        for n in (2, 5, 10, 30):
            p = 1 - (1 - tau) ** (n - 1)
            n_est = estimate_stations(p, cw)
            assert n_est == pytest.approx(n, rel=1e-6)

    def test_monotone_in_busy_fraction(self):
        a = estimate_stations(0.1, 32)
        b = estimate_stations(0.5, 32)
        assert b > a

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            estimate_stations(1.0, 32)
        with pytest.raises(ValueError):
            estimate_stations(0.2, 0.5)
