"""Property-based tests on core invariants (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AdaptiveBandwidthManager,
    AdmissionController,
    bianchi_tau,
    failure_probability,
    optimal_cw,
    video_delay_bound,
    voice_response_bound,
)
from repro.core.schedulability import VideoFlow, VoiceFlow
from repro.phy import PhyTiming
from repro.traffic import VideoParams, VoiceParams


class FixedShares:
    share_i = 0.5
    share_ii = 0.2


# ----------------------------------------------------------- capacity ----
@settings(max_examples=150, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=200),
    cw=st.integers(min_value=2, max_value=1024),
    m=st.integers(min_value=0, max_value=8),
    pe=st.floats(min_value=0.0, max_value=0.5),
)
def test_property_bianchi_tau_is_a_probability(n, cw, m, pe):
    tau = bianchi_tau(n, cw, m, pe=pe)
    assert 0.0 < tau < 1.0
    p = failure_probability(tau, n, pe)
    # p can round to exactly 1.0 for very large n (float underflow of
    # (1-tau)^(n-1)); it must never exceed 1
    assert 0.0 <= p <= 1.0


@settings(max_examples=80, deadline=None)
@given(
    cw=st.integers(min_value=2, max_value=256),
    m=st.integers(min_value=0, max_value=6),
)
def test_property_tau_monotone_decreasing_in_n(cw, m):
    # with m=0 the window never doubles and tau is constant in n; the
    # tolerance absorbs the bisection noise around that plateau
    taus = [bianchi_tau(n, cw, m) for n in (1, 4, 16, 64)]
    assert all(a >= b - 1e-9 for a, b in zip(taus, taus[1:]))


@settings(max_examples=80, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=100),
    frame_slots=st.floats(min_value=1.0, max_value=2000.0),
)
def test_property_optimal_cw_positive_and_monotone(n, frame_slots):
    cw = optimal_cw(n, frame_slots)
    assert cw >= 1.0
    assert optimal_cw(n + 10, frame_slots) >= cw


# ------------------------------------------------------ schedulability ----
@settings(max_examples=100, deadline=None)
@given(
    rates=st.lists(st.floats(min_value=1, max_value=100), min_size=1, max_size=6),
    extra=st.floats(min_value=1, max_value=100),
    t=st.floats(min_value=1e-4, max_value=5e-3),
)
def test_property_voice_bound_monotone_under_insertion(rates, extra, t):
    """Adding a source never shrinks any existing source's bound."""
    import bisect

    base = sorted(rates)
    flows = [VoiceFlow(rate=r, max_jitter=0.1) for r in base]
    grown = sorted(base + [extra])
    flows2 = [VoiceFlow(rate=r, max_jitter=0.1) for r in grown]
    # the new source lands at position k; sources before it keep their
    # index, sources after shift by one (ties are interchangeable —
    # equal-rate flows are identical objects analytically)
    k = bisect.bisect_left(base, extra)
    for i in range(len(base)):
        j = i if i < k else i + 1
        assert voice_response_bound(flows2, j, t) >= voice_response_bound(
            flows, i, t
        ) - 1e-12


@settings(max_examples=100, deadline=None)
@given(
    voice_rate=st.floats(min_value=0, max_value=300),
    rho=st.floats(min_value=1, max_value=200),
    sigma=st.floats(min_value=0, max_value=50),
    t=st.floats(min_value=1e-4, max_value=2e-3),
)
def test_property_video_bound_worsens_with_voice_load(voice_rate, rho, sigma, t):
    videos = [VideoFlow(avg_rate=rho, burstiness=sigma, max_delay=1.0)]
    light = video_delay_bound([], videos, 0, t)
    voices = [VoiceFlow(rate=max(voice_rate, 1e-3), max_jitter=0.1)]
    heavy = video_delay_bound(voices, videos, 0, t)
    assert heavy >= light - 1e-12


# ----------------------------------------------------------- admission ----
@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["voice", "video"]),
            st.booleans(),  # handoff
            st.floats(min_value=10, max_value=120),  # rate
        ),
        min_size=1,
        max_size=25,
    )
)
def test_property_admission_never_breaks_feasible_sessions(requests):
    """Whatever the arrival sequence, every admitted session's bound
    holds at admission time, orders stay sorted, and counts balance."""
    ac = AdmissionController(PhyTiming(), 512 * 8, FixedShares())
    admitted = 0
    for i, (kind, handoff, rate) in enumerate(requests):
        if kind == "voice":
            s = ac.try_admit_voice(
                f"s{i}", VoiceParams(rate=rate, max_jitter=0.05), handoff, 0.0
            )
        else:
            s = ac.try_admit_video(
                f"s{i}",
                VideoParams(avg_rate=rate, burstiness=5, max_delay=0.08),
                handoff,
                0.0,
            )
        if s is not None:
            admitted += 1
    assert ac.admitted_count == admitted
    assert ac.rejected_count == len(requests) - admitted
    voice_rates = [s.params.rate for s in ac.voice_sessions]
    assert voice_rates == sorted(voice_rates)
    video_delays = [s.params.max_delay for s in ac.video_sessions]
    assert video_delays == sorted(video_delays)
    # every bound respected under the shares in force
    for s, b in zip(ac.voice_sessions, ac.voice_bounds()):
        assert b <= s.params.max_jitter + 1e-12
    for s, b in zip(ac.video_sessions, ac.video_bounds()):
        assert b <= s.params.max_delay + 1e-12


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_property_admit_remove_roundtrip(data):
    """Removing everything admitted returns the controller to empty."""
    ac = AdmissionController(PhyTiming(), 512 * 8, FixedShares())
    sessions = []
    n = data.draw(st.integers(min_value=1, max_value=10))
    for i in range(n):
        s = ac.try_admit_voice(f"v{i}", VoiceParams(rate=25, max_jitter=0.1))
        if s is not None:
            sessions.append(s)
    order = data.draw(st.permutations(range(len(sessions))))
    for idx in order:
        ac.remove(sessions[idx])
    assert ac.voice_sessions == []


# ----------------------------------------------------------- bandwidth ----
@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1),
            st.floats(min_value=0, max_value=1),
            st.floats(min_value=0, max_value=1),
        ),
        min_size=1,
        max_size=50,
    )
)
def test_property_bandwidth_shares_always_valid(updates):
    """Any feedback sequence keeps (I, II, III) a valid partition with
    channel III's floor intact."""
    bm = AdaptiveBandwidthManager()
    floor = bm.thresholds.ch3_min
    for drop, block, util in updates:
        bm.update(drop, block, util)
        assert 0 < bm.share_i <= 1
        assert 0 < bm.share_ii <= 1
        assert bm.share_iii >= floor - 1e-9
        assert bm.share_i + bm.share_ii + bm.share_iii == pytest.approx(1.0)
        assert bm.share_i >= bm.thresholds.ch1_min - 1e-9
        assert bm.share_ii >= bm.thresholds.ch2_min - 1e-9
