"""Property-style checks of the partitioned backoff windows.

Randomized ``(alphas, beta, stage, scale)`` configurations drawn with a
seeded stdlib ``random.Random`` — reproducible, no external property
framework.  The paper's priority guarantee is structural: within any
stage, the windows of distinct levels are pairwise disjoint, ordered by
priority, and *any* draw of level ``j`` is strictly below *any* draw of
level ``j+1``.
"""

import random

import numpy as np
import pytest

from repro.core.priority_backoff import PriorityBackoff

N_CASES = 60


def random_cases():
    """Deterministic stream of exercised configurations."""
    rng = random.Random(0x5EED)
    cases = []
    for _ in range(N_CASES):
        n_levels = rng.randint(1, 5)
        alphas = tuple(rng.randint(1, 16) for _ in range(n_levels))
        beta = rng.randint(0, 4)
        max_stage = rng.randint(0, 6)
        scale = rng.choice([0.5, 1.0, 1.0, 2.0, 3.7])
        stage = rng.randint(0, max_stage + 2)  # past the cap on purpose
        cases.append((alphas, beta, max_stage, scale, stage))
    return cases


CASES = random_cases()


def windows(policy, stage):
    return [policy.window(level, stage) for level in range(policy.num_levels)]


class TestWindowPartition:
    @pytest.mark.parametrize("alphas,beta,max_stage,scale,stage", CASES)
    def test_windows_pairwise_disjoint_and_ordered(
        self, alphas, beta, max_stage, scale, stage
    ):
        policy = PriorityBackoff(alphas, beta, max_stage, scale)
        spans = windows(policy, stage)
        for (off_a, w_a), (off_b, w_b) in zip(spans, spans[1:]):
            assert w_a >= 1 and w_b >= 1
            # ordered by priority, with exactly beta guard slots between
            assert off_a + w_a + policy.beta == off_b
        # pairwise disjointness for *all* pairs, not just neighbours
        slots = [set(range(off, off + w)) for off, w in spans]
        for i in range(len(slots)):
            for j in range(i + 1, len(slots)):
                assert not (slots[i] & slots[j]), (i, j)

    @pytest.mark.parametrize("alphas,beta,max_stage,scale,stage", CASES)
    def test_total_window_spans_every_level(
        self, alphas, beta, max_stage, scale, stage
    ):
        policy = PriorityBackoff(alphas, beta, max_stage, scale)
        last_off, last_w = policy.window(policy.num_levels - 1, stage)
        assert policy.total_window(stage) == last_off + last_w

    @pytest.mark.parametrize("alphas,beta,max_stage,scale,stage", CASES)
    def test_windows_double_until_the_stage_cap(
        self, alphas, beta, max_stage, scale, stage
    ):
        policy = PriorityBackoff(alphas, beta, max_stage, scale)
        for level in range(policy.num_levels):
            _, w0 = policy.window(level, 0)
            _, w = policy.window(level, stage)
            assert w == w0 * 2 ** min(stage, max_stage)


class TestDrawOrdering:
    @pytest.mark.parametrize(
        "alphas,beta,max_stage,scale,stage",
        [c for c in CASES if len(c[0]) >= 2][:20],
    )
    def test_any_higher_priority_draw_beats_any_lower(
        self, alphas, beta, max_stage, scale, stage
    ):
        policy = PriorityBackoff(alphas, beta, max_stage, scale)
        nprng = np.random.default_rng(7)
        draws = {
            level: [policy.draw_slots(level, stage, nprng) for _ in range(50)]
            for level in range(policy.num_levels)
        }
        for level in range(policy.num_levels - 1):
            assert max(draws[level]) < min(draws[level + 1])

    def test_draws_cover_exactly_the_window(self):
        policy = PriorityBackoff((2, 3), beta=1)
        nprng = np.random.default_rng(1)
        for level in (0, 1):
            offset, width = policy.window(level, 0)
            seen = {policy.draw_slots(level, 0, nprng) for _ in range(400)}
            assert seen == set(range(offset, offset + width))


class TestStarvationDrift:
    def test_frozen_timer_crosses_into_higher_priority_range(self):
        # A deferring low-priority station keeps its absolute slot, so
        # after enough decrements it undercuts fresh high-priority draws.
        policy = PriorityBackoff((4, 4, 8), beta=0)
        offset2, width2 = policy.window(2, 0)
        worst_level2 = offset2 + width2 - 1
        offset0, _ = policy.window(0, 0)
        decrements_needed = worst_level2 - offset0
        assert decrements_needed > 0  # it does eventually drift in front
        assert worst_level2 - decrements_needed == offset0
