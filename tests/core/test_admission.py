"""Unit tests for the theorem-based admission controller."""

import pytest

from repro.core import AdmissionController, rt_exchange_time
from repro.phy import PhyTiming
from repro.traffic import VideoParams, VoiceParams


class FixedShares:
    def __init__(self, i=0.5, ii=0.2):
        self._i, self._ii = i, ii

    @property
    def share_i(self):
        return self._i

    @property
    def share_ii(self):
        return self._ii


def make(i=0.5, ii=0.2, **kw):
    return AdmissionController(PhyTiming(), 512 * 8, FixedShares(i, ii), **kw)


def vo(rate=50.0, jitter=0.03):
    return VoiceParams(rate=rate, max_jitter=jitter)


def vid(rate=60.0, burst=8.0, delay=0.08):
    return VideoParams(avg_rate=rate, burstiness=burst, max_delay=delay)


def test_rt_exchange_time_composition():
    t = PhyTiming()
    expected = t.poll_time() + t.sifs + t.frame_airtime(512 * 8) + t.sifs
    assert rt_exchange_time(t, 512 * 8) == pytest.approx(expected)


def test_first_voice_call_admitted():
    ac = make()
    s = ac.try_admit_voice("v0", vo())
    assert s is not None
    assert ac.admitted_count == 1
    assert len(ac.voice_sessions) == 1


def test_admission_eventually_saturates():
    ac = make()
    admitted = 0
    for i in range(200):
        if ac.try_admit_voice(f"v{i}", vo()) is not None:
            admitted += 1
    assert 0 < admitted < 200
    assert ac.rejected_count == 200 - admitted


def test_voice_sessions_kept_in_theorem2_order():
    ac = make()
    for i, rate in enumerate([80.0, 20.0, 50.0]):
        ac.try_admit_voice(f"v{i}", vo(rate=rate, jitter=0.1))
    rates = [s.params.rate for s in ac.voice_sessions]
    assert rates == sorted(rates)


def test_video_sessions_kept_in_delay_order():
    ac = make()
    for i, d in enumerate([0.09, 0.05, 0.07]):
        assert ac.try_admit_video(f"d{i}", vid(delay=d)) is not None
    delays = [s.params.max_delay for s in ac.video_sessions]
    assert delays == sorted(delays)


def test_video_token_latency_engineered():
    ac = make()
    s = ac.try_admit_video("d0", vid())
    assert s is not None
    assert s.token_latency >= ac.packet_time
    assert s.token_latency < vid().max_delay


def test_handoff_gets_larger_share():
    """A call that fails against channel I alone can pass with I+II."""
    ac = make(i=0.08, ii=0.4)
    demanding = vo(rate=400.0, jitter=0.02)
    assert ac.try_admit_voice("new", demanding, handoff=False) is None
    s = ac.try_admit_voice("ho", demanding, handoff=True, handoff_time=0.0)
    assert s is not None and s.handoff


def test_admission_protects_existing_calls():
    """A new call that would break an admitted video source is refused."""
    ac = make()
    tight = vid(rate=250, burst=8, delay=0.03)
    assert ac.try_admit_video("d0", tight) is not None
    blocked = 0
    for i in range(100):
        if ac.try_admit_voice(f"v{i}", vo(rate=100, jitter=1.0)) is None:
            blocked = i
            break
    # eventually refused even though each voice call alone is fine
    assert blocked > 0
    # the video source's bound still holds
    assert ac.video_bounds()[0] <= tight.max_delay


def test_remove_frees_capacity():
    ac = make()
    sessions = []
    while True:
        s = ac.try_admit_voice(f"v{len(sessions)}", vo())
        if s is None:
            break
        sessions.append(s)
    ac.remove(sessions[0])
    assert ac.try_admit_voice("again", vo()) is not None


def test_remove_is_idempotent():
    ac = make()
    s = ac.try_admit_voice("v0", vo())
    ac.remove(s)
    ac.remove(s)
    assert ac.voice_sessions == []


def test_find_by_station_id():
    ac = make()
    ac.try_admit_voice("v0", vo())
    ac.try_admit_video("d0", vid())
    assert ac.find("v0").is_voice
    assert not ac.find("d0").is_voice
    assert ac.find("ghost") is None


def test_bounds_reported_for_fig5():
    ac = make()
    ac.try_admit_voice("v0", vo())
    ac.try_admit_voice("v1", vo(rate=25))
    ac.try_admit_video("d0", vid())
    vb = ac.voice_bounds()
    db = ac.video_bounds()
    assert len(vb) == 2 and len(db) == 1
    assert all(b > 0 for b in vb + db)
    # bounds respect the constraints of everything admitted
    for s, b in zip(ac.voice_sessions, vb):
        assert b <= s.params.max_jitter


def test_declared_utilization():
    ac = make()
    ac.try_admit_voice("v0", vo(rate=50))
    ac.try_admit_video("d0", vid(rate=60))
    assert ac.utilization_declared() == pytest.approx(110 * ac.packet_time)


def test_invalid_token_fraction():
    with pytest.raises(ValueError):
        make(token_latency_fraction=1.5)
