"""Unit + property tests for the Theorem 1-3 bounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    VideoFlow,
    VoiceFlow,
    optimal_voice_order,
    total_waiting_time,
    video_delay_bound,
    video_rate_latency,
    video_schedulable,
    voice_response_bound,
    voice_schedulable,
)

T = 1.2e-3  # ~ per-packet CFP exchange time used throughout


def voice(rate=50.0, jitter=0.03, handoff=0.0, share=1.0):
    return VoiceFlow(rate=rate, max_jitter=jitter, handoff_time=handoff, share=share)


def video(rate=60.0, burst=10.0, delay=0.05, handoff=0.0, share=1.0, x=0.0):
    return VideoFlow(
        avg_rate=rate, burstiness=burst, max_delay=delay,
        handoff_time=handoff, share=share, token_latency=x,
    )


class TestVoiceBound:
    def test_single_source_formula(self):
        flows = [voice()]
        expected = T * (1 + 0.03 * 50.0)
        assert voice_response_bound(flows, 0, T) == pytest.approx(expected)

    def test_bound_grows_with_more_sources(self):
        one = voice_response_bound([voice()], 0, T)
        flows = [voice(rate=30), voice()]
        two = voice_response_bound(flows, 1, T)
        assert two > one

    def test_share_scales_bound(self):
        full = voice_response_bound([voice(share=1.0)], 0, T)
        half = voice_response_bound([voice(share=0.5)], 0, T)
        assert half == pytest.approx(2 * full)

    def test_schedulable_small_set(self):
        flows = [voice(rate=25, jitter=0.04), voice(rate=50, jitter=0.04)]
        assert all(voice_schedulable(flows, T))

    def test_unschedulable_when_overloaded(self):
        flows = [voice(rate=2000.0, jitter=0.01) for _ in range(5)]
        assert not all(voice_schedulable(flows, T))

    def test_handoff_time_consumes_slack(self):
        ok = voice(jitter=0.01)
        tight = voice(jitter=0.01, handoff=0.0099)
        assert voice_schedulable([ok], T)[0]
        assert not voice_schedulable([tight], T)[0]

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            voice_response_bound([voice()], 1, T)

    def test_invalid_packet_time(self):
        with pytest.raises(ValueError):
            voice_response_bound([voice()], 0, 0.0)

    def test_invalid_flow_params(self):
        with pytest.raises(ValueError):
            VoiceFlow(rate=0, max_jitter=0.1)
        with pytest.raises(ValueError):
            VoiceFlow(rate=10, max_jitter=0.1, handoff_time=-1)
        with pytest.raises(ValueError):
            VoiceFlow(rate=10, max_jitter=0.1, share=0)


class TestVideoBound:
    def test_rate_latency_shape(self):
        voices = [voice(rate=100)]
        videos = [video(rate=50)]
        rate, latency = video_rate_latency(voices, videos, 0, T)
        assert rate == pytest.approx(1 / T - 100)
        assert latency == pytest.approx(T * 2)

    def test_higher_priority_video_eats_rate(self):
        voices = []
        videos = [video(rate=200, delay=0.02), video(rate=50, delay=0.05)]
        r0, _ = video_rate_latency(voices, videos, 0, T)
        r1, _ = video_rate_latency(voices, videos, 1, T)
        assert r1 == pytest.approx(r0 - 200)

    def test_delay_bound_includes_token_latency(self):
        voices = []
        base = video_delay_bound(voices, [video(x=0.0)], 0, T)
        with_x = video_delay_bound(voices, [video(x=0.005)], 0, T)
        assert with_x == pytest.approx(base + 0.005)

    def test_overload_gives_infinite_bound(self):
        voices = [voice(rate=2000)]
        assert video_delay_bound(voices, [video()], 0, T) == float("inf")

    def test_schedulable_feasible_mix(self):
        voices = [voice(rate=50, jitter=0.03)]
        videos = [video(rate=60, burst=5, delay=0.05)]
        assert all(video_schedulable(voices, videos, T))

    def test_burstiness_raises_delay(self):
        a = video_delay_bound([], [video(burst=1)], 0, T)
        b = video_delay_bound([], [video(burst=30)], 0, T)
        assert b > a

    def test_invalid_flow_params(self):
        with pytest.raises(ValueError):
            VideoFlow(avg_rate=0, burstiness=1, max_delay=0.1)
        with pytest.raises(ValueError):
            VideoFlow(avg_rate=10, burstiness=-1, max_delay=0.1)
        with pytest.raises(ValueError):
            VideoFlow(avg_rate=10, burstiness=1, max_delay=0.1, share=1.5)


class TestTheorem2:
    def test_optimal_order_is_ascending_rate(self):
        flows = [voice(rate=r) for r in (90, 30, 60)]
        ordered = optimal_voice_order(flows)
        assert [f.rate for f in ordered] == [30, 60, 90]

    def test_total_waiting_time_formula(self):
        # demands 1, 2, 3 in order: waits are 0, 1, 3
        assert total_waiting_time([1, 2, 3]) == 4.0

    def test_spt_beats_reverse(self):
        demands = [5.0, 1.0, 3.0]
        spt = total_waiting_time(sorted(demands))
        rev = total_waiting_time(sorted(demands, reverse=True))
        assert spt < rev

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            total_waiting_time([1.0, -2.0])

    @settings(max_examples=200, deadline=None)
    @given(
        demands=st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=12
        )
    )
    def test_property_spt_is_optimal(self, demands):
        """Theorem 2: ascending order minimizes total waiting time over
        every permutation reachable by adjacent swaps (= all of them)."""
        import itertools

        spt = total_waiting_time(sorted(demands))
        if len(demands) <= 6:
            best = min(
                total_waiting_time(p) for p in itertools.permutations(demands)
            )
            assert spt == pytest.approx(best)
        # random single swap never improves on SPT
        order = sorted(demands)
        for i in range(len(order) - 1):
            swapped = order.copy()
            swapped[i], swapped[i + 1] = swapped[i + 1], swapped[i]
            assert total_waiting_time(swapped) >= spt - 1e-9


@settings(max_examples=150, deadline=None)
@given(
    rates=st.lists(st.floats(min_value=1, max_value=200), min_size=1, max_size=8),
    jitter=st.floats(min_value=0.005, max_value=0.2),
)
def test_property_voice_bound_monotone_in_prefix(rates, jitter):
    """W_i grows with i: serving later never shrinks the bound."""
    flows = [voice(rate=r, jitter=jitter) for r in sorted(rates)]
    bounds = [voice_response_bound(flows, i, T) for i in range(len(flows))]
    assert all(b2 >= b1 for b1, b2 in zip(bounds, bounds[1:]))
