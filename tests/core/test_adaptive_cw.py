"""Unit tests for the adaptive contention-window controller."""

import numpy as np
import pytest

from repro.core import AdaptiveCW
from repro.phy import PhyTiming


def make(**kw):
    defaults = dict(timing=PhyTiming(), update_every=16)
    defaults.update(kw)
    return AdaptiveCW(**defaults)


def rng():
    return np.random.Generator(np.random.PCG64(0))


def test_starts_at_nominal_window():
    cw = make()
    assert cw.cw_estimate == float(cw.total_window(0))
    assert cw.scale == 1.0


def test_busy_fraction_zero_initially():
    assert make().busy_fraction() == 0.0


def test_quiet_channel_keeps_window_small():
    cw = make()
    before = cw.cw_estimate
    for _ in range(20):
        cw.observe_slots(idle_slots=16, busy_events=0)
    # with nothing observed busy, n-est ~ 1, target CW small
    assert cw.cw_estimate <= before
    assert cw.updates >= 1


def test_congested_channel_grows_window():
    cw = make()
    before = cw.total_window(0)
    for _ in range(60):
        cw.observe_slots(idle_slots=1, busy_events=3)
        cw.observe_outcome(False)
    assert cw.total_window(0) > before
    assert cw.cw_estimate > before


def test_failures_count_toward_busy_fraction():
    cw = make(update_every=10**9)  # never auto-update
    cw.observe_slots(idle_slots=5, busy_events=0)
    cw.observe_outcome(False)
    assert cw.busy_fraction() == pytest.approx(1 / 6)


def test_smoothing_limits_step_size():
    calm = make(sigma_smooth=0.95)
    jumpy = make(sigma_smooth=0.0)
    for c in (calm, jumpy):
        c.observe_slots(idle_slots=1, busy_events=15)
    assert abs(calm.cw_estimate - calm.total_window(0)) >= 0  # updated
    # the unsmoothed one moved further from the start
    start = float(PriorityTotal())
    assert abs(jumpy.cw_estimate - start) > abs(calm.cw_estimate - start)


def PriorityTotal():
    from repro.core import PriorityBackoff

    return PriorityBackoff().total_window(0)


def test_counters_reset_after_update():
    cw = make(update_every=8)
    cw.observe_slots(idle_slots=8, busy_events=0)
    assert cw.busy_fraction() == 0.0  # window was consumed by the update


def test_partition_preserved_under_adaptation():
    cw = make()
    for _ in range(40):
        cw.observe_slots(idle_slots=2, busy_events=6)
    # priority separation must survive scaling
    g = rng()
    hi = max(cw.draw_slots(0, 0, g) for _ in range(100))
    lo = min(cw.draw_slots(1, 0, g) for _ in range(100))
    assert hi < lo


def test_shared_instance_pools_observations():
    cw = make(update_every=10)
    # two "stations" feeding the same policy
    cw.observe_slots(5, 0)
    cw.observe_slots(5, 0)
    assert cw.updates == 1


def test_invalid_params():
    with pytest.raises(ValueError):
        make(sigma_smooth=1.0)
    with pytest.raises(ValueError):
        make(sigma_smooth=-0.1)
    with pytest.raises(ValueError):
        make(update_every=0)
