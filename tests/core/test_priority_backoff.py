"""Unit + property tests for the partitioned priority backoff."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PriorityBackoff


def rng(seed=0):
    return np.random.Generator(np.random.PCG64(seed))


def test_paper_table1_example():
    """The paper's running example: high 0-3, low(er) 4-7 at stage 0."""
    pb = PriorityBackoff(alphas=(4, 4, 8), beta=0)
    assert pb.window(0, 0) == (0, 4)  # draws 0..3
    assert pb.window(1, 0) == (4, 4)  # draws 4..7
    assert pb.window(2, 0) == (8, 8)  # draws 8..15


def test_windows_double_per_stage():
    pb = PriorityBackoff(alphas=(4, 4, 8), beta=0)
    assert pb.window(0, 1) == (0, 8)
    assert pb.window(1, 1) == (8, 8)
    assert pb.window(2, 1) == (16, 16)
    assert pb.window(2, 2) == (32, 32)


def test_beta_inserts_guard_slots():
    pb = PriorityBackoff(alphas=(2, 2), beta=3)
    off0, w0 = pb.window(0, 0)
    off1, w1 = pb.window(1, 0)
    assert off0 == 0
    assert off1 == w0 + 3


def test_lowest_priority_gets_widest_window():
    pb = PriorityBackoff()  # paper default (4, 4, 8)
    assert pb.window(2, 0)[1] > pb.window(0, 0)[1]


def test_draws_stay_within_level_window():
    pb = PriorityBackoff(alphas=(4, 4, 8), beta=1)
    g = rng()
    for level in range(3):
        offset, width = pb.window(level, 2)
        draws = [pb.draw_slots(level, 2, g) for _ in range(300)]
        assert min(draws) >= offset
        assert max(draws) < offset + width


def test_strict_priority_separation_same_stage():
    """Any level-j draw beats any level-(j+1) draw at the same stage."""
    pb = PriorityBackoff(alphas=(4, 4, 8), beta=0)
    g = rng(1)
    for stage in range(4):
        hi = max(pb.draw_slots(0, stage, g) for _ in range(200))
        lo = min(pb.draw_slots(1, stage, g) for _ in range(200))
        assert hi < lo


def test_scale_expands_windows():
    pb = PriorityBackoff(alphas=(4, 4, 8))
    base_total = pb.total_window(0)
    pb.set_scale(2.0)
    assert pb.total_window(0) == 2 * base_total


def test_scale_never_collapses_below_one_slot():
    pb = PriorityBackoff(alphas=(4, 4, 8), scale=1e-6)
    for level in range(3):
        assert pb.window(level, 0)[1] >= 1


def test_stage_caps_at_max_stage():
    pb = PriorityBackoff(alphas=(4,), max_stage_=2)
    assert pb.window(0, 2)[1] == pb.window(0, 10)[1]


def test_table_shape():
    pb = PriorityBackoff(alphas=(4, 4, 8))
    rows = pb.table(stages=2)
    assert len(rows) == 6
    assert rows[0] == {"stage": 0, "level": 0, "range": (0, 3)}
    assert rows[2]["range"] == (8, 15)


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        PriorityBackoff(alphas=())
    with pytest.raises(ValueError):
        PriorityBackoff(alphas=(0, 4))
    with pytest.raises(ValueError):
        PriorityBackoff(beta=-1)
    with pytest.raises(ValueError):
        PriorityBackoff(max_stage_=-1)
    with pytest.raises(ValueError):
        PriorityBackoff(scale=0)
    pb = PriorityBackoff()
    with pytest.raises(ValueError):
        pb.window(3, 0)
    with pytest.raises(ValueError):
        pb.window(0, -1)
    with pytest.raises(ValueError):
        pb.set_scale(-1.0)


@settings(max_examples=150, deadline=None)
@given(
    alphas=st.lists(st.integers(min_value=1, max_value=32), min_size=1, max_size=5),
    beta=st.integers(min_value=0, max_value=8),
    stage=st.integers(min_value=0, max_value=6),
    scale=st.floats(min_value=0.1, max_value=8.0),
)
def test_property_windows_are_disjoint_and_ordered(alphas, beta, stage, scale):
    """Priority windows never overlap and are strictly ordered."""
    pb = PriorityBackoff(alphas=tuple(alphas), beta=beta, scale=scale)
    prev_end = -1
    for level in range(len(alphas)):
        offset, width = pb.window(level, stage)
        assert width >= 1
        assert offset > prev_end
        prev_end = offset + width - 1
    assert pb.total_window(stage) == prev_end + 1


@settings(max_examples=60, deadline=None)
@given(
    stage=st.integers(min_value=0, max_value=5),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_draw_in_window(stage, seed):
    pb = PriorityBackoff(alphas=(3, 5, 7), beta=2)
    g = rng(seed)
    for level in range(3):
        offset, width = pb.window(level, stage)
        d = pb.draw_slots(level, stage, g)
        assert offset <= d < offset + width
