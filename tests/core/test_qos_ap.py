"""Integration tests for the QoS access point (request → admit → poll)."""

import pytest

from repro.core import AdaptiveBandwidthManager, QosAccessPoint, QosApConfig
from repro.mac import DcfTransmitter, Nav, RealTimeStation, RTState, StandardBEB
from repro.phy import BitErrorModel, Channel, PhyTiming
from repro.sim import RandomStreams, Simulator
from repro.traffic import Packet, TrafficKind, VideoParams, VoiceParams


class World:
    def __init__(self, seed=0, **ap_kw):
        self.sim = Simulator()
        self.timing = PhyTiming()
        self.streams = RandomStreams(seed)
        self.channel = Channel(self.sim, BitErrorModel(0.0, self.streams.get("ch")))
        self.nav = Nav()
        self.ap = QosAccessPoint(
            self.sim, self.channel, self.timing, self.nav,
            config=QosApConfig(**ap_kw),
        )

    def make_station(self, sid, kind=TrafficKind.VOICE, qos=None, handoff=False):
        qos = qos or VoiceParams(rate=25, max_jitter=0.03, packet_bits=512 * 8)
        dcf = DcfTransmitter(
            self.sim, self.channel, self.timing, StandardBEB(8),
            self.streams.get(f"dcf/{sid}"), sid, self.nav,
        )
        sta = RealTimeStation(
            self.sim, sid, dcf, "ap", kind, qos, is_handoff=handoff,
        )
        self.ap.register_station(sta)
        return sta

    def pkt(self, sid, deadline_in=0.03):
        return Packet(
            created=self.sim.now, bits=512 * 8, source_id=sid,
            kind=TrafficKind.VOICE, seq=0, deadline=self.sim.now + deadline_in,
        )


def test_request_admission_grant_flow():
    w = World()
    sta = w.make_station("v0")
    sta.start_admission_request()
    w.sim.run(until=0.1)
    assert sta.admitted
    assert sta.state in (RTState.WAIT, RTState.EMPTY)
    assert w.ap.admitted_new == 1
    assert w.ap.admission.find("v0") is not None
    assert w.ap.policy.get("v0") is not None


def test_admitted_station_gets_polled_and_delivers():
    w = World()
    sta = w.make_station("v0")
    sta.start_admission_request()
    w.sim.run(until=0.05)
    p = w.pkt("v0")
    sta.buffer.append(p)
    w.ap.policy.grant_token("v0")
    w.sim.run(until=0.2)
    assert p.completed is not None
    assert p.access_delay() < 0.05


def test_overloaded_admission_blocks_and_denies():
    w = World()
    heavy = VoiceParams(rate=2000.0, max_jitter=0.005, packet_bits=512 * 8)
    a = w.make_station("a", qos=heavy)
    b = w.make_station("b", qos=heavy)
    a.start_admission_request()
    b.start_admission_request()
    w.sim.run(until=0.2)
    assert w.ap.blocked_new >= 1
    assert not (a.admitted and b.admitted)
    denied = b if a.admitted else a
    assert denied.state == RTState.EMPTY


def test_handoff_rejection_counted_separately():
    w = World()
    heavy = VoiceParams(rate=5000.0, max_jitter=0.004, packet_bits=512 * 8)
    h = w.make_station("h", qos=heavy, handoff=True)
    h.start_admission_request()
    w.sim.run(until=0.2)
    assert w.ap.rejected_handoff == 1
    assert w.ap.blocked_new == 0


def test_duplicate_request_is_idempotent():
    w = World()
    sta = w.make_station("v0")
    sta.start_admission_request()
    w.sim.run(until=0.05)
    # lost-ACK path: the same station requests again
    sta.admitted = False
    sta.start_admission_request()
    w.sim.run(until=0.1)
    assert sta.admitted
    assert w.ap.admitted_new == 1  # no double admission
    assert len(w.ap.admission.voice_sessions) == 1


def test_reactivation_grants_token_without_readmission():
    w = World()
    sta = w.make_station("v0")
    sta.start_admission_request()
    w.sim.run(until=0.05)
    # drain the initial token
    w.ap.policy.get("v0").has_token = False
    # arrival into an EMPTY admitted station fires a reactivation request
    sta.state = RTState.EMPTY
    sta.packet_arrival(w.pkt("v0", deadline_in=1.0))
    w.sim.run(until=0.2)
    assert w.ap.reactivations >= 1
    assert w.ap.admitted_new == 1


def test_departed_station_fully_cleaned_up():
    w = World()
    sta = w.make_station("v0")
    sta.start_admission_request()
    w.sim.run(until=0.05)
    w.ap.station_departed("v0")
    assert w.ap.admission.find("v0") is None
    assert w.ap.policy.get("v0") is None
    assert "v0" not in w.ap.coordinator.stations
    w.ap.station_departed("v0")  # idempotent


def test_cfp_respects_min_cp_guarantee():
    w = World()
    sta = w.make_station("v0")
    sta.start_admission_request()
    w.sim.run(until=0.05)
    # Two CFPs cannot be back-to-back: the channel III share separates them
    starts = []
    orig = w.ap.coordinator.start_cfp

    def spy(scheduler, max_dur, on_end):
        starts.append(w.sim.now)
        orig(scheduler, max_dur, on_end)

    w.ap.coordinator.start_cfp = spy
    for i in range(5):
        w.sim.call_at(0.06 + i * 0.001, w.ap.policy.grant_token, "v0")
    w.sim.run(until=0.4)
    assert len(starts) >= 2
    gaps = [b - a for a, b in zip(starts, starts[1:])]
    assert all(g > 0 for g in gaps)


def test_feedback_drives_bandwidth_updates():
    calls = []

    def feedback():
        calls.append(True)
        return (0.0, 0.5, 0.3)

    sim = Simulator()
    streams = RandomStreams(0)
    channel = Channel(sim, BitErrorModel(0.0, streams.get("ch")))
    ap = QosAccessPoint(
        sim, channel, PhyTiming(), Nav(),
        config=QosApConfig(adaptation_interval=0.5),
        feedback=feedback,
    )
    before = ap.bandwidth.share_i
    sim.run(until=2.1)
    assert len(calls) == 4
    assert ap.bandwidth.share_i > before  # blocking pushed channel I up


def test_video_admission_creates_token_latency():
    w = World()
    vq = VideoParams(avg_rate=60, burstiness=6, max_delay=0.05,
                     packet_bits=512 * 8)
    sta = w.make_station("d0", kind=TrafficKind.VIDEO, qos=vq)
    sta.start_admission_request()
    w.sim.run(until=0.1)
    session = w.ap.admission.find("d0")
    assert session is not None and not session.is_voice
    assert session.token_latency > 0


def test_budget_prefers_nonhandoff_in_channel_i():
    w = World()
    # a non-handoff session: eligible only while channel-I budget remains
    sta = w.make_station("v0")
    sta.start_admission_request()
    w.sim.run(until=0.05)
    session = w.ap.admission.find("v0")
    sf = w.ap.config.superframe
    w.ap._used_new = w.ap.bandwidth.share_i * sf  # exhaust channel I
    assert not w.ap._budget_allows(session)
    w.ap._used_new = 0.0
    assert w.ap._budget_allows(session)


def test_handoff_budget_spans_channel_ii_plus_spare_i():
    w = World()
    h = w.make_station("h0", handoff=True)
    h.start_admission_request()
    w.sim.run(until=0.05)
    session = w.ap.admission.find("h0")
    assert session.handoff
    sf = w.ap.config.superframe
    # channel II exhausted but channel I spare: still pollable
    w.ap._used_handoff = w.ap.bandwidth.share_ii * sf
    w.ap._used_new = 0.0
    assert w.ap._budget_allows(session)
    # both exhausted: not pollable
    w.ap._used_new = w.ap.bandwidth.share_i * sf
    assert not w.ap._budget_allows(session)


def test_config_validation():
    with pytest.raises(ValueError):
        QosApConfig(superframe=0)
    with pytest.raises(ValueError):
        QosApConfig(rt_packet_bits=0)
    with pytest.raises(ValueError):
        QosApConfig(multipoll_size=0)
    with pytest.raises(ValueError):
        QosApConfig(adaptation_interval=-1)
