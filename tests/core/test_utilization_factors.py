"""Tests for per-class utilization factors (paper Section II-A)."""

import pytest

from repro.core import AdaptiveCW
from repro.mac import DcfTransmitter, Frame, FrameType
from repro.mac.backoff import LEVEL_HANDOFF, LEVEL_NEW_OR_DATA
from repro.phy import PhyTiming

from ..mac.conftest import MacWorld


def make(**kw):
    defaults = dict(timing=PhyTiming(), update_every=10**9)  # no auto-reset
    defaults.update(kw)
    return AdaptiveCW(**defaults)


def test_factors_start_at_zero():
    cw = make()
    assert cw.utilization_factors() == (0.0, 0.0, 0.0)


def test_busy_in_level0_range_counts_for_level0():
    cw = make()  # partition (4, 4, 8): level 0 owns slots 0-3
    cw.observe_span(0, 2, interrupted=True)  # busy at slot 2
    assert cw.utilization_factor(0) > 0
    assert cw.utilization_factor(1) == 0.0
    assert cw.utilization_factor(2) == 0.0


def test_busy_in_level2_range_counts_for_level2():
    cw = make()  # level 2 owns slots 8-15
    cw.observe_span(0, 10, interrupted=True)  # busy at slot 10
    assert cw.utilization_factor(2) > 0
    assert cw.utilization_factor(0) == 0.0  # slots 0-3 were idle... busy no


def test_idle_spans_lower_the_factor():
    cw = make()
    cw.observe_span(0, 4, interrupted=False)  # level 0 fully idle
    assert cw.utilization_factor(0) == 0.0
    cw.observe_span(0, 3, interrupted=True)  # busy at slot 3 (level 0)
    assert 0 < cw.utilization_factor(0) < 1


def test_factor_is_busy_over_observed():
    cw = make()
    # observe level 0's full range idle twice, then one busy at slot 0
    cw.observe_span(0, 4, interrupted=False)
    cw.observe_span(0, 4, interrupted=False)
    cw.observe_span(0, 0, interrupted=True)
    assert cw.utilization_factor(0) == pytest.approx(1 / 9)


def test_factors_reset_on_adaptation_update():
    cw = make(update_every=4)
    cw.observe_span(0, 2, interrupted=True)
    cw.observe_span(0, 2, interrupted=False)  # triggers update (>=4 slots)
    assert cw.utilization_factors() == (0.0, 0.0, 0.0)


def test_invalid_level_rejected():
    with pytest.raises(ValueError):
        make().utilization_factor(7)


def test_end_to_end_factors_reflect_contention_mix():
    """With only data-priority stations contending, the data class's
    range carries at least as much busy mass as the handoff class's.

    The handoff range is not exactly zero: a frozen-and-resumed data
    station legitimately expires within its first few remaining slots,
    which map to low shared-window positions — the inherent ambiguity
    of positional observation under freeze/resume that the paper's
    estimator glosses over.
    """
    world = MacWorld()
    policy = make()
    txs = []

    def refill(tx, sid):
        frame = Frame(FrameType.DATA, src=sid, dest="ap", payload_bits=4096)
        tx.enqueue(frame, LEVEL_NEW_OR_DATA, lambda ok: refill(tx, sid))

    for i in range(6):
        sid = f"s{i}"
        tx = DcfTransmitter(
            world.sim, world.channel, world.timing, policy,
            world.rng(sid), sid, world.nav,
        )
        txs.append(tx)
        refill(tx, sid)
    world.sim.run(until=1.0)
    factors = policy.utilization_factors()
    assert factors[2] > 0.0
    assert factors[2] >= factors[0]
