"""Tests for the voice-order ablation knob (Theorem 2 variants)."""

import pytest

from repro.core import TokenPolicy
from repro.core.admission import Session
from repro.sim import Simulator
from repro.traffic import VoiceParams


def vs(sid, rate):
    return Session(sid, VoiceParams(rate=rate, max_jitter=0.1), False, 0.0)


def order_of(policy):
    return [s.station_id for s in policy.voice]


def test_ascending_is_theorem2(tmp_path=None):
    tp = TokenPolicy(Simulator(), voice_order="ascending")
    for sid, rate in (("a", 50), ("b", 20), ("c", 80), ("d", 35)):
        tp.add_session(vs(sid, rate))
    assert order_of(tp) == ["b", "d", "a", "c"]


def test_descending_reverses():
    tp = TokenPolicy(Simulator(), voice_order="descending")
    for sid, rate in (("a", 50), ("b", 20), ("c", 80)):
        tp.add_session(vs(sid, rate))
    assert order_of(tp) == ["c", "a", "b"]


def test_arrival_order_preserves_admission_sequence():
    tp = TokenPolicy(Simulator(), voice_order="arrival")
    for sid, rate in (("a", 50), ("b", 20), ("c", 80)):
        tp.add_session(vs(sid, rate))
    assert order_of(tp) == ["a", "b", "c"]


def test_equal_rates_stable_in_ascending():
    tp = TokenPolicy(Simulator(), voice_order="ascending")
    for sid in ("x", "y", "z"):
        tp.add_session(vs(sid, 25))
    assert order_of(tp) == ["x", "y", "z"]


def test_invalid_order_rejected():
    with pytest.raises(ValueError):
        TokenPolicy(Simulator(), voice_order="random")
