"""Tests for the EDCF-style differentiation policies and AIFS support."""

import numpy as np
import pytest

from repro.core import AifsDifferentiation, CwDifferentiation
from repro.mac import DcfTransmitter, Frame, FrameType
from repro.phy import PhyTiming

from ..mac.conftest import MacWorld


def rng(seed=0):
    return np.random.Generator(np.random.PCG64(seed))


class TestCwDifferentiation:
    def test_windows_per_level(self):
        p = CwDifferentiation(cw_mins=(8, 16, 32))
        assert p.window(0, 0) == 8
        assert p.window(2, 0) == 32
        assert p.window(0, 2) == 32
        assert p.window(2, 10) == 1024  # capped

    def test_draws_overlap_from_zero(self):
        p = CwDifferentiation(cw_mins=(8, 32))
        g = rng()
        lo_draws = [p.draw_slots(1, 0, g) for _ in range(300)]
        assert min(lo_draws) < 8  # low priority CAN draw small values

    def test_high_priority_wins_statistically_not_strictly(self):
        p = CwDifferentiation(cw_mins=(8, 32))
        g = rng(1)
        wins = sum(
            p.draw_slots(0, 0, g) < p.draw_slots(1, 0, g) for _ in range(2000)
        )
        assert 0.6 < wins / 2000 < 0.95  # probabilistic, not strict

    def test_no_extra_ifs(self):
        assert CwDifferentiation().extra_ifs(0) == 0.0
        assert CwDifferentiation().extra_ifs(2) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CwDifferentiation(cw_mins=())
        with pytest.raises(ValueError):
            CwDifferentiation(cw_mins=(0, 8))
        with pytest.raises(ValueError):
            CwDifferentiation(cw_mins=(8,), cw_max=4)
        with pytest.raises(ValueError):
            CwDifferentiation().window(5, 0)
        with pytest.raises(ValueError):
            CwDifferentiation().window(0, -1)


class TestAifsDifferentiation:
    def test_extra_ifs_scales_with_slots(self):
        t = PhyTiming()
        p = AifsDifferentiation(t, aifs_slots=(0, 2, 4))
        assert p.extra_ifs(0) == 0.0
        assert p.extra_ifs(1) == pytest.approx(2 * t.slot)
        assert p.extra_ifs(2) == pytest.approx(4 * t.slot)

    def test_common_window_for_all_levels(self):
        p = AifsDifferentiation(PhyTiming(), cw_min=16)
        g = rng()
        for level in range(3):
            draws = [p.draw_slots(level, 0, g) for _ in range(200)]
            assert max(draws) < 16

    def test_validation(self):
        t = PhyTiming()
        with pytest.raises(ValueError):
            AifsDifferentiation(t, aifs_slots=())
        with pytest.raises(ValueError):
            AifsDifferentiation(t, aifs_slots=(-1,))
        with pytest.raises(ValueError):
            AifsDifferentiation(t, cw_min=0)
        with pytest.raises(ValueError):
            AifsDifferentiation(t).extra_ifs(9)
        with pytest.raises(ValueError):
            AifsDifferentiation(t).window(-1)


class TestAifsInDcf:
    def test_higher_aifs_level_transmits_later(self):
        """Two stations, same backoff draw, different AIFS: the
        lower-AIFS one transmits first."""
        world = MacWorld()
        t = world.timing
        policy = AifsDifferentiation(t, aifs_slots=(0, 6), cw_min=1)
        order = []
        for sid, level in (("fast", 0), ("slow", 1)):
            tx = DcfTransmitter(
                world.sim, world.channel, t, policy, world.rng(sid),
                sid, world.nav,
            )
            frame = Frame(FrameType.DATA, src=sid, dest="ap", payload_bits=2048)
            # make the medium busy first so both must defer and count
            world.sim.call_at(
                0.001, tx.enqueue, frame, level,
                lambda ok, sid=sid: order.append(sid),
            )
        blocker = Frame(FrameType.DATA, src="x", dest="y", payload_bits=8000)
        world.channel.transmit(blocker, 0.005, sender=None)
        world.sim.run()
        assert order[0] == "fast"

    def test_aifs_delays_immediate_access(self):
        """A level whose AIFS hasn't elapsed cannot use immediate access."""
        world = MacWorld()
        t = world.timing
        policy = AifsDifferentiation(t, aifs_slots=(0, 10), cw_min=1)
        tx = DcfTransmitter(
            world.sim, world.channel, t, policy, world.rng("s"), "s", world.nav,
        )
        done_at = []
        # enqueue when the medium has been idle exactly DIFS: enough for
        # level 0, not for level 1
        at = t.difs
        frame = Frame(FrameType.DATA, src="s", dest="ap", payload_bits=2048)
        world.sim.call_at(
            at, tx.enqueue, frame, 1, lambda ok: done_at.append(world.sim.now)
        )
        world.sim.run()
        # must have waited at least the 10-slot AIFS beyond DIFS
        assert done_at[0] >= t.difs + 10 * t.slot
