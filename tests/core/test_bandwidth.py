"""Unit tests for the adaptive bandwidth manager (paper's pseudocode)."""

import pytest

from repro.core import AdaptiveBandwidthManager, BandwidthThresholds


def make(**kw):
    return AdaptiveBandwidthManager(**kw)


def test_initial_shares_and_channel_iii():
    bm = make(initial_share_i=0.4, initial_share_ii=0.1)
    assert bm.share_i == pytest.approx(0.4)
    assert bm.share_ii == pytest.approx(0.1)
    assert bm.share_iii == pytest.approx(0.5)


def test_high_dropping_grows_channel_ii():
    bm = make()
    before = bm.share_ii
    bm.update(drop_prob=0.5, block_prob=0.0, utilization=0.5)
    assert bm.share_ii > before


def test_dropping_beats_blocking_priority():
    """When both are over threshold, only channel II is adjusted."""
    bm = make()
    i_before = bm.share_i
    bm.update(drop_prob=0.5, block_prob=0.5, utilization=0.5)
    assert bm.share_i <= i_before  # channel I untouched (except clamping)


def test_high_blocking_grows_channel_i():
    bm = make()
    before = bm.share_i
    bm.update(drop_prob=0.0, block_prob=0.5, utilization=0.5)
    assert bm.share_i > before


def test_blocking_growth_capped_at_medium_when_utilized():
    t = BandwidthThresholds()
    bm = make()
    for _ in range(20):
        bm.update(drop_prob=0.0, block_prob=0.5, utilization=0.99)
    assert bm.share_i <= t.ch1_medium + 1e-9


def test_blocking_growth_capped_at_max_when_underutilized():
    t = BandwidthThresholds()
    bm = make()
    for _ in range(20):
        bm.update(drop_prob=0.0, block_prob=0.5, utilization=0.1)
    assert bm.share_i <= t.ch1_max + 1e-9
    assert bm.share_i > t.ch1_medium  # allowed beyond the medium cap


def test_quiet_underutilized_system_decays_toward_floors():
    t = BandwidthThresholds()
    bm = make()
    for _ in range(50):
        bm.update(drop_prob=0.0, block_prob=0.0, utilization=0.2)
    assert bm.share_i == pytest.approx(t.ch1_min)
    assert bm.share_ii == pytest.approx(t.ch2_min)


def test_stable_when_all_good_and_utilized():
    bm = make()
    i, ii = bm.share_i, bm.share_ii
    bm.update(drop_prob=0.0, block_prob=0.0, utilization=0.95)
    assert bm.share_i == i
    assert bm.share_ii == ii


def test_channel_iii_minimum_always_respected():
    t = BandwidthThresholds()
    bm = make()
    for _ in range(50):
        bm.update(drop_prob=0.9, block_prob=0.9, utilization=0.1)
    assert bm.share_iii >= t.ch3_min - 1e-9


def test_shares_always_a_partition():
    bm = make()
    import itertools

    for d, b, u in itertools.product((0.0, 0.5), (0.0, 0.5), (0.1, 0.99)):
        bm.update(d, b, u)
        assert 0 < bm.share_i < 1
        assert 0 < bm.share_ii < 1
        assert bm.share_i + bm.share_ii + bm.share_iii == pytest.approx(1.0)


def test_invalid_probabilities_rejected():
    bm = make()
    with pytest.raises(ValueError):
        bm.update(-0.1, 0, 0)
    with pytest.raises(ValueError):
        bm.update(0, 1.5, 0)
    with pytest.raises(ValueError):
        bm.update(0, 0, 2.0)


def test_invalid_initial_shares_rejected():
    with pytest.raises(ValueError):
        make(initial_share_i=0.9)
    with pytest.raises(ValueError):
        make(initial_share_ii=0.9)


def test_threshold_validation():
    with pytest.raises(ValueError):
        BandwidthThresholds(up=0.9)
    with pytest.raises(ValueError):
        BandwidthThresholds(down=1.1)
    with pytest.raises(ValueError):
        BandwidthThresholds(drop=1.5)
    with pytest.raises(ValueError):
        BandwidthThresholds(ch1_min=0.7, ch1_medium=0.5)
    with pytest.raises(ValueError):
        BandwidthThresholds(ch2_min=0.5, ch2_max=0.2)
