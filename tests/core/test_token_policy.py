"""Unit tests for the token-buffer transmit-permission policy."""

import pytest

from repro.core import TokenPolicy
from repro.core.admission import Session
from repro.mac import Frame, FrameType
from repro.sim import Simulator
from repro.traffic import VideoParams, VoiceParams


def voice_session(sid="v0", rate=50.0, handoff=False):
    return Session(sid, VoiceParams(rate=rate, max_jitter=0.03), handoff, 0.0)


def video_session(sid="d0", delay=0.05, x=0.01, handoff=False):
    s = Session(
        sid, VideoParams(avg_rate=60, burstiness=8, max_delay=delay), handoff, 0.0
    )
    s.token_latency = x
    return s


def cf_data(sid, piggyback, eof=False, backlog=False, created=0.0):
    from repro.traffic import Packet, TrafficKind

    pkt = Packet(created=created, bits=4096, source_id=sid,
                 kind=TrafficKind.VOICE, seq=0)
    return Frame(
        FrameType.CF_DATA, src=sid, dest="ap", payload_bits=4096,
        piggyback=piggyback, packet=pkt,
        info={"eof": eof, "backlog": backlog},
    )


def cf_null(sid, next_eta=None):
    return Frame(
        FrameType.CF_DATA, src=sid, dest="ap", piggyback=True,
        info={"eof": False, "backlog": False, "next_eta": next_eta},
    )


def test_new_session_is_pollable():
    sim = Simulator()
    tp = TokenPolicy(sim)
    tp.add_session(voice_session())
    assert tp.any_token()
    action = tp.next_action(0.0, 0.0)
    assert action.station_ids == ("v0",)


def test_voice_token_consumed_at_poll():
    sim = Simulator()
    tp = TokenPolicy(sim)
    tp.add_session(voice_session())
    tp.next_action(0.0, 0.0)
    assert not tp.any_token()
    assert tp.next_action(0.0, 0.0) is None


def test_voice_regen_phase_locked_to_arrival_on_piggyback():
    """The next token lands one guard past the next expected arrival
    (served packet's creation + 1/r)."""
    sim = Simulator()
    tp = TokenPolicy(sim)
    tp.add_session(voice_session(rate=50.0))
    tp.next_action(0.0, 0.0)
    # packet created at t=0, served now (t=0): next arrival at 0.02
    tp.on_response("v0", cf_data("v0", piggyback=True, created=0.0), True, sim.now)
    assert not tp.any_token()
    assert tp.next_token_time() == pytest.approx(0.02 + tp.voice_guard)
    sim.run(until=0.022)
    assert tp.any_token()


def test_voice_backlog_drains_fast():
    sim = Simulator()
    tp = TokenPolicy(sim, drain_interval=0.001)
    tp.add_session(voice_session(rate=50.0))
    tp.next_action(0.0, 0.0)
    tp.on_response("v0", cf_data("v0", piggyback=True, backlog=True), True, sim.now)
    assert tp.next_token_time() == pytest.approx(0.001)


def test_voice_cf_null_uses_signalled_eta():
    sim = Simulator()
    tp = TokenPolicy(sim)
    tp.add_session(voice_session(rate=50.0))
    tp.next_action(0.0, 0.0)
    tp.on_response("v0", cf_null("v0", next_eta=0.007), True, sim.now)
    assert tp.next_token_time() == pytest.approx(0.007 + tp.voice_guard)


def test_voice_cf_null_without_eta_hunts_at_quarter_period():
    sim = Simulator()
    tp = TokenPolicy(sim)
    tp.add_session(voice_session(rate=50.0))
    tp.next_action(0.0, 0.0)
    tp.on_response("v0", cf_null("v0", next_eta=None), True, sim.now)
    assert tp.next_token_time() == pytest.approx(0.02 / 4)


def test_video_null_response_stops_regeneration():
    """A silent polled video source falls back to the reactivation path
    rather than being re-polled every x_j."""
    sim = Simulator()
    tp = TokenPolicy(sim)
    tp.add_session(video_session(x=0.01))
    tp.next_action(0.0, 0.0)
    tp.on_response("d0", None, True, sim.now)
    sim.run(until=1.0)
    assert not tp.any_token()
    assert tp.next_token_time() == float("inf")


def test_voice_no_regen_without_piggyback():
    sim = Simulator()
    tp = TokenPolicy(sim)
    tp.add_session(voice_session())
    tp.next_action(0.0, 0.0)
    tp.on_response("v0", cf_data("v0", piggyback=False), True, sim.now)
    sim.run(until=1.0)
    assert not tp.any_token()
    assert tp.next_token_time() == float("inf")


def test_video_token_persists_through_burst():
    sim = Simulator()
    tp = TokenPolicy(sim)
    tp.add_session(video_session())
    for _ in range(3):
        action = tp.next_action(sim.now, 0.0)
        assert action.station_ids == ("d0",)
        tp.on_response("d0", cf_data("d0", piggyback=True), True, sim.now)
    assert tp.any_token()


def test_video_token_removed_and_regenerated_after_x():
    sim = Simulator()
    tp = TokenPolicy(sim)
    tp.add_session(video_session(x=0.01))
    tp.next_action(0.0, 0.0)
    tp.on_response("d0", cf_data("d0", piggyback=False), True, sim.now)
    assert not tp.any_token()
    assert tp.next_token_time() == pytest.approx(0.01)
    sim.run(until=0.011)
    assert tp.any_token()


def test_video_eof_stops_regeneration():
    sim = Simulator()
    tp = TokenPolicy(sim)
    tp.add_session(video_session())
    tp.next_action(0.0, 0.0)
    tp.on_response("d0", cf_data("d0", piggyback=False, eof=True), True, sim.now)
    sim.run(until=1.0)
    assert not tp.any_token()


def test_reactivation_grant_cancels_pending_regen():
    sim = Simulator()
    tp = TokenPolicy(sim)
    tp.add_session(video_session(x=0.5))
    tp.next_action(0.0, 0.0)
    tp.on_response("d0", cf_data("d0", piggyback=False), True, sim.now)
    assert tp.grant_token("d0")
    assert tp.any_token()
    # the x-regen timer must not double-arm the token later
    state = tp.get("d0")
    assert state.regen_handle is None


def test_grant_token_unknown_station_false():
    assert not TokenPolicy(Simulator()).grant_token("ghost")


def test_voice_polled_before_video():
    sim = Simulator()
    tp = TokenPolicy(sim)
    tp.add_session(video_session())
    tp.add_session(voice_session())
    action = tp.next_action(0.0, 0.0)
    assert action.station_ids == ("v0",)


def test_voice_scan_order_ascending_rate():
    sim = Simulator()
    tp = TokenPolicy(sim)
    tp.add_session(voice_session("fast", rate=90))
    tp.add_session(voice_session("slow", rate=20))
    action = tp.next_action(0.0, 0.0)
    assert action.station_ids == ("slow",)


def test_video_scan_order_ascending_delay():
    sim = Simulator()
    tp = TokenPolicy(sim)
    tp.add_session(video_session("lax", delay=0.2))
    tp.add_session(video_session("tight", delay=0.02))
    action = tp.next_action(0.0, 0.0)
    assert action.station_ids == ("tight",)


def test_multipoll_batches_across_classes():
    sim = Simulator()
    tp = TokenPolicy(sim, multipoll_size=3)
    tp.add_session(voice_session("v0"))
    tp.add_session(voice_session("v1", rate=80))
    tp.add_session(video_session("d0"))
    action = tp.next_action(0.0, 0.0)
    assert action.station_ids == ("v0", "v1", "d0")


def test_budget_check_filters_sessions():
    sim = Simulator()
    tp = TokenPolicy(sim, budget_check=lambda s: s.handoff)
    tp.add_session(voice_session("new", handoff=False))
    tp.add_session(voice_session("ho", rate=80, handoff=True))
    action = tp.next_action(0.0, 0.0)
    assert action.station_ids == ("ho",)


def test_on_token_callback_fires():
    sim = Simulator()
    tp = TokenPolicy(sim)
    fired = []
    tp.on_token = lambda: fired.append(sim.now)
    tp.add_session(voice_session())
    assert fired  # admission itself arms a token


def test_remove_session_cancels_everything():
    sim = Simulator()
    tp = TokenPolicy(sim)
    tp.add_session(voice_session())
    tp.next_action(0.0, 0.0)
    tp.on_response("v0", cf_data("v0", piggyback=True), True, sim.now)
    tp.remove_session("v0")
    sim.run(until=1.0)
    assert not tp.any_token()
    assert tp.get("v0") is None
    tp.remove_session("v0")  # idempotent


def test_duplicate_add_rejected():
    sim = Simulator()
    tp = TokenPolicy(sim)
    tp.add_session(voice_session())
    with pytest.raises(ValueError):
        tp.add_session(voice_session())


def test_invalid_multipoll_size():
    with pytest.raises(ValueError):
        TokenPolicy(Simulator(), multipoll_size=0)


def test_response_for_unknown_station_ignored():
    tp = TokenPolicy(Simulator())
    tp.on_response("ghost", None, True, 0.0)  # must not raise


# -- abnormal-null escalation (fault hardening) ---------------------------


def test_invalid_evict_after_rejected():
    with pytest.raises(ValueError):
        TokenPolicy(Simulator(), evict_after=-1)


def test_abnormal_nulls_escalate_to_eviction_at_threshold():
    sim = Simulator()
    tp = TokenPolicy(sim, evict_after=3)
    evicted = []
    tp.on_evict = evicted.append
    tp.add_session(voice_session())
    tp.on_response("v0", None, False, 0.0)
    tp.on_response("v0", None, False, 0.02)
    assert tp.get("v0").misses == 2 and evicted == []
    tp.on_response("v0", None, False, 0.04)
    assert evicted == ["v0"]


def test_successful_exchange_resets_the_miss_count():
    sim = Simulator()
    tp = TokenPolicy(sim, evict_after=3)
    tp.add_session(voice_session())
    tp.on_response("v0", None, False, 0.0)
    tp.on_response("v0", None, False, 0.02)
    tp.on_response("v0", cf_data("v0", piggyback=True), True, 0.04)
    assert tp.get("v0").misses == 0


def test_legit_empty_buffer_null_is_not_a_miss():
    sim = Simulator()
    tp = TokenPolicy(sim, evict_after=1)
    evicted = []
    tp.on_evict = evicted.append
    tp.add_session(voice_session())
    tp.on_response("v0", None, True, 0.0)  # legit null: ok=True
    assert tp.get("v0").misses == 0 and evicted == []


def test_zero_evict_after_disables_eviction():
    sim = Simulator()
    tp = TokenPolicy(sim)  # default evict_after=0
    evicted = []
    tp.on_evict = evicted.append
    tp.add_session(voice_session())
    for i in range(20):
        tp.on_response("v0", None, False, i * 0.02)
    assert evicted == []
    assert tp.get("v0").misses == 20


def test_lost_voice_poll_probes_at_quarter_period():
    sim = Simulator()
    tp = TokenPolicy(sim, evict_after=6)
    tp.add_session(voice_session(rate=50.0))
    tp.next_action(0.0, 0.0)  # poll consumes the voice token
    assert not tp.any_token()
    tp.on_response("v0", None, False, 0.0)  # the poll never arrived
    state = tp.get("v0")
    assert state.regen_handle is not None
    # without the probe the voice source would starve forever; a
    # quarter period sits well inside the monitors' 2/r envelope
    assert state.regen_handle.time == pytest.approx((1.0 / 50.0) / 4.0)
    sim.run()
    assert state.has_token  # pollable again


def test_video_token_persists_across_a_miss():
    sim = Simulator()
    tp = TokenPolicy(sim, evict_after=6)
    tp.add_session(video_session())
    tp.next_action(0.0, 0.0)  # video tokens are not consumed at poll
    tp.on_response("d0", None, False, 0.0)
    state = tp.get("d0")
    assert state.misses == 1
    assert state.has_token  # the next scheduling step re-polls it
    action = tp.next_action(0.001, 0.001)
    assert action is not None and action.station_ids == ("d0",)


def test_reactivation_grant_resets_the_miss_count():
    sim = Simulator()
    tp = TokenPolicy(sim, evict_after=6)
    tp.add_session(voice_session())
    tp.on_response("v0", None, False, 0.0)
    tp.on_response("v0", None, False, 0.02)
    assert tp.grant_token("v0")
    assert tp.get("v0").misses == 0
