"""Engine-tier validation: per-claim verdict deltas vs the exact grid.

``repro validate --engine batched`` runs the tier grid under the
requested engine and, for non-exact engines, additionally evaluates
the same claims on the exact grid, reporting per-claim verdict deltas.
The deltas are informational: ``passed`` reflects the requested
engine's claims only.  A tiny custom :class:`TierSpec` keeps this fast
enough for the unit suite.
"""

import pytest

from repro.validate.runner import TierSpec, run_validation, validation_grid

TINY = TierSpec(
    name="tiny",
    description="two points per scheme, unit-test sized",
    schemes=("conventional", "proposed"),
    loads=(1.0,),
    seeds=(1,),
    sim_time=6.0,
    warmup=1.0,
    fig5_populations=((1, 1),),
    fig5_sim_time=4.0,
)


class TestValidationGrid:
    def test_grid_carries_the_requested_engine(self):
        grid = validation_grid(TINY, "batched")
        assert len(grid) == TINY.grid_points
        assert all(cfg.engine == "batched" for cfg in grid)
        assert all(cfg.monitor_invariants for cfg in grid)

    def test_exact_grid_keys_are_engine_free(self):
        grid = validation_grid(TINY, "exact")
        assert all("engine" not in cfg.to_dict() for cfg in grid)


class TestEngineDeltas:
    @pytest.fixture(scope="class")
    def batched_report(self):
        return run_validation(TINY, engine="batched", include_fig5=False)

    def test_report_tags_the_engine(self, batched_report):
        assert batched_report.engine == "batched"
        assert batched_report.to_dict()["engine"] == "batched"
        assert "(engine=batched)" in batched_report.render()

    def test_deltas_cover_every_claim(self, batched_report):
        deltas = batched_report.claim_deltas
        assert len(deltas) == len(batched_report.claims)
        ids = {d["claim_id"] for d in deltas}
        assert ids == {c.claim_id for c in batched_report.claims}

    def test_delta_shape(self, batched_report):
        for d in batched_report.claim_deltas:
            assert set(d) == {
                "claim_id", "engine_status", "exact_status", "changed"
            }
            assert d["changed"] == (d["engine_status"] != d["exact_status"])

    def test_deltas_serialize_into_the_json_report(self, batched_report):
        out = batched_report.to_dict()
        assert out["claim_deltas"] == list(batched_report.claim_deltas)

    def test_passed_reflects_engine_claims_only(self, batched_report):
        # informational contract: the exact reference never gates
        gating = [
            c for c in batched_report.claims if c.status == "fail"
        ]
        assert batched_report.passed == (not gating)


class TestExactReportsStayLean:
    def test_exact_report_has_no_deltas(self):
        report = run_validation(TINY, engine="exact", include_fig5=False)
        assert report.engine == "exact"
        assert report.claim_deltas == ()
        assert "claim_deltas" not in report.to_dict()
        assert "[delta]" not in report.render()
