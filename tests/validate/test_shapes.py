"""Shape-claim gates on synthetic rows: healthy rows pass, a
deliberately broken scheme fails the *specific* claim."""

import json

import pytest

from repro.validate.shapes import CLAIM_IDS, ShapeThresholds, evaluate_claims

LIGHT, HEAVY = 0.5, 3.0
SEEDS = (1, 2, 3)


def healthy_rows():
    """Synthetic sweep rows mirroring the calibrated repo behaviour."""
    rows = []
    for seed in SEEDS:
        jit = 0.001 * seed  # common-random-number per-seed wobble
        for load in (LIGHT, HEAVY):
            heavy = load == HEAVY
            rows.append({
                "scheme": "proposed", "load": load, "seed": seed,
                "dropping_probability": 0.10 + jit if heavy else 0.0,
                "blocking_probability": 0.98 + jit / 10 if heavy else 0.1,
                "voice_delay_mean": 0.0025 + jit / 10,
                "voice_delay_var": 1e-6,
                "video_delay_mean": 0.006 + jit / 10,
                "data_delay_mean": (0.15 if heavy else 0.01) + jit,
                "goodput_utilization": 0.22 if heavy else 0.10,
                "channel_busy_fraction": 0.64 if heavy else 0.30,
                "invariant_violations": [],
            })
            rows.append({
                "scheme": "proposed-multipoll", "load": load, "seed": seed,
                "dropping_probability": 0.09 + jit if heavy else 0.0,
                "blocking_probability": 0.98 + jit / 10 if heavy else 0.1,
                "voice_delay_mean": 0.0026 + jit / 10,
                "voice_delay_var": 1.1e-6,
                "video_delay_mean": 0.0062 + jit / 10,
                "data_delay_mean": (0.14 if heavy else 0.01) + jit,
                "goodput_utilization": 0.22 if heavy else 0.10,
                "channel_busy_fraction": 0.63 if heavy else 0.29,
                "invariant_violations": [],
            })
            rows.append({
                "scheme": "conventional", "load": load, "seed": seed,
                "dropping_probability": 0.48 + jit if heavy else 0.0,
                "blocking_probability": 0.48 + jit / 10 if heavy else 0.05,
                "voice_delay_mean": 0.0087 + jit / 10,
                "voice_delay_var": 7e-5,
                "video_delay_mean": 0.027 + jit / 10,
                "data_delay_mean": (0.06 if heavy else 0.02) + jit,
                "goodput_utilization": 0.25 if heavy else 0.10,
                "channel_busy_fraction": 0.87 if heavy else 0.35,
                "invariant_violations": [],
            })
    return rows


def healthy_fig5():
    return [
        {
            "n_voice": nv, "n_video": nd,
            "analytic_max_jitter": 0.01 * (nv + 1),
            "simulated_max_jitter": 0.004 * (nv + 1),
            "analytic_max_delay": 0.02 * (nd + 1),
            "simulated_max_delay": 0.008 * (nd + 1),
        }
        for nv, nd in ((1, 1), (2, 1), (3, 2))
    ]


def by_id(results):
    return {r.claim_id: r for r in results}


class TestHealthyRows:
    def test_every_claim_passes(self):
        results = evaluate_claims(healthy_rows(), healthy_fig5())
        assert [r.claim_id for r in results] == list(CLAIM_IDS)
        assert {r.status for r in results} == {"pass"}

    def test_report_is_jsonable(self):
        results = evaluate_claims(healthy_rows(), healthy_fig5())
        dumped = json.loads(json.dumps([r.as_dict() for r in results]))
        assert all(d["status"] == "pass" for d in dumped)


class TestDeliberateBreakage:
    """Each broken metric trips its own claim and only related ones."""

    def _failing(self, rows, fig5=None):
        return {
            r.claim_id
            for r in evaluate_claims(rows, fig5 or healthy_fig5())
            if r.status == "fail"
        }

    def test_fig5_bound_violation_is_caught(self):
        fig5 = healthy_fig5()
        fig5[1]["simulated_max_jitter"] = fig5[1]["analytic_max_jitter"] * 2
        failing = self._failing(healthy_rows(), fig5)
        assert failing == {"fig5.bounds-conservative"}

    def test_unpinned_dropping_is_caught(self):
        rows = healthy_rows()
        for r in rows:
            if r["scheme"] == "proposed" and r["load"] == HEAVY:
                r["dropping_probability"] = 0.5  # proposed drops like DCF
        assert "fig6.dropping-pinned" in self._failing(rows)

    def test_reversed_voice_delay_ordering_is_caught(self):
        # e.g. a reversed Theorem 2 voice order destroying the win
        rows = healthy_rows()
        for r in rows:
            if r["scheme"] == "proposed":
                r["voice_delay_mean"] = 0.02  # now worse than conventional
        assert "fig8.voice-delay-proposed-wins" in self._failing(rows)

    def test_flattened_variance_ordering_is_caught(self):
        rows = healthy_rows()
        for r in rows:
            if r["scheme"] == "conventional":
                r["voice_delay_var"] = 1e-6  # as smooth as polling
        assert "fig8.voice-variance-ordering" in self._failing(rows)

    def test_missing_data_reversal_is_caught(self):
        rows = healthy_rows()
        for r in rows:
            if r["scheme"] == "proposed" and r["load"] == HEAVY:
                r["data_delay_mean"] = 0.01  # data no longer pays
        assert "fig10.data-delay-reversal" in self._failing(rows)

    def test_invariant_violations_are_caught_with_context(self):
        rows = healthy_rows()
        rows[4]["invariant_violations"] = ["[token t=1.0] bad regen"]
        results = by_id(evaluate_claims(rows, healthy_fig5()))
        claim = results["invariants.clean"]
        assert claim.status == "fail"
        dirty = claim.evidence["dirty_rows"]
        assert len(dirty) == 1
        assert dirty[0]["violations"] == ["[token t=1.0] bad regen"]


class TestSkips:
    def test_single_scheme_rows_skip_ordering_claims(self):
        rows = [r for r in healthy_rows() if r["scheme"] == "proposed"]
        results = by_id(evaluate_claims(rows, None))
        assert results["fig8.voice-delay-proposed-wins"].status == "skip"
        assert results["fig11.multipoll-efficiency"].status == "skip"
        assert results["fig5.bounds-conservative"].status == "skip"
        # proposed-only claims still evaluate
        assert results["fig6.dropping-pinned"].status == "pass"
        assert results["invariants.clean"].status == "pass"

    def test_unmonitored_rows_skip_invariants(self):
        rows = healthy_rows()
        for r in rows:
            del r["invariant_violations"]
        results = by_id(evaluate_claims(rows, healthy_fig5()))
        assert results["invariants.clean"].status == "skip"

    def test_empty_rows_all_skip(self):
        results = evaluate_claims([], None)
        assert {r.status for r in results} == {"skip"}


class TestThresholds:
    def test_tighter_dropping_cap_flips_verdict(self):
        rows = healthy_rows()
        strict = ShapeThresholds(dropping_cap=0.01)  # the paper's threshold_D
        results = by_id(evaluate_claims(rows, healthy_fig5(), strict))
        assert results["fig6.dropping-pinned"].status == "fail"

    def test_defaults_are_self_consistent(self):
        th = ShapeThresholds()
        assert 0 < th.dropping_cap < 1
        assert th.variance_ratio_min > 1
        assert pytest.approx(0.95) == th.confidence
