"""Runtime invariant monitors: unit fixtures for each check plus a
monitored end-to-end scenario staying silent."""

import pytest

from repro.core.admission import Session
from repro.core.token_policy import TokenPolicy, TokenState
from repro.metrics.collectors import MetricsCollector
from repro.metrics.stats import JitterTracker
from repro.network.bss import ScenarioConfig, BssScenario
from repro.sim.engine import Simulator
from repro.traffic.video import VideoParams
from repro.traffic.voice import VoiceParams
from repro.validate.invariants import InvariantSuite

VOICE = VoiceParams(rate=25.0, max_jitter=0.030)
VIDEO = VideoParams(avg_rate=60.0, burstiness=6.0, max_delay=0.050)


def make_suite():
    sim = Simulator()
    return sim, InvariantSuite(sim)


def voice_state(has_token=False):
    state = TokenState(Session("voice/0", VOICE, False, 0.0))
    state.has_token = has_token
    return state


def video_state(token_latency=0.02):
    state = TokenState(
        Session("video/0", VIDEO, False, 0.0, token_latency=token_latency)
    )
    state.has_token = False
    return state


class TestClockMonitor:
    def test_attaches_as_step_observer(self):
        sim, suite = make_suite()
        assert sim.step_observer is not None
        sim.call_in(1.0, lambda: None)
        sim.call_in(2.0, lambda: None)
        sim.run()
        assert suite.clean

    def test_backwards_clock_is_flagged(self):
        _, suite = make_suite()
        suite._on_step(5.0)
        suite._on_step(4.0)
        assert not suite.clean
        assert "clock" in suite.violations[0].monitor


class TestNavMonitor:
    def test_normal_extension_is_silent(self):
        sim, suite = make_suite()
        nav = suite.monitored_nav()
        nav.set(1.0)
        assert nav.until == 1.0 and suite.clean

    def test_set_in_the_past_is_flagged(self):
        sim, suite = make_suite()
        nav = suite.monitored_nav()
        sim.call_in(10.0, nav.set, 3.0)  # at t=10, set NAV to 3
        sim.run()
        assert not suite.clean
        assert suite.violations[0].monitor == "nav"
        assert nav.until == 3.0  # behaviour unchanged, only reported

    def test_noop_stale_set_is_silent(self):
        sim, suite = make_suite()
        nav = suite.monitored_nav()
        nav.set(20.0)
        sim.call_in(10.0, nav.set, 3.0)  # stale but not extending
        sim.run()
        assert suite.clean


class TestTokenMonitor:
    def test_negative_delay_is_flagged(self):
        _, suite = make_suite()
        suite.token_regen_scheduled(voice_state(), -0.01, 0.0)
        assert any("negative regeneration" in v.message for v in suite.violations)

    def test_regen_while_token_held_is_flagged(self):
        _, suite = make_suite()
        suite.token_regen_scheduled(voice_state(has_token=True), 0.01, 0.0)
        assert any("still present" in v.message for v in suite.violations)

    def test_voice_pacing_envelope(self):
        _, suite = make_suite()
        period = 1.0 / VOICE.rate
        suite.token_regen_scheduled(voice_state(), period, 0.0)
        assert suite.clean
        suite.token_regen_scheduled(voice_state(), 3.0 * period, 0.0)
        assert any("pacing envelope" in v.message for v in suite.violations)

    def test_video_regen_must_match_engineered_latency(self):
        _, suite = make_suite()
        suite.token_regen_scheduled(video_state(0.02), 0.02, 0.0)
        assert suite.clean
        suite.token_regen_scheduled(video_state(0.02), 0.03, 0.0)
        assert any("x_j" in v.message for v in suite.violations)

    def test_policy_wiring_reports_before_engine_raises(self):
        # the acceptance fixture: a broken token bound inside a real
        # TokenPolicy is caught by the monitor
        sim, suite = make_suite()
        policy = TokenPolicy(sim)
        suite.attach_token_policy(policy)
        state = policy.add_session(Session("voice/0", VOICE, False, 0.0))
        state.has_token = False
        with pytest.raises(ValueError):
            policy._schedule_regen(state, -0.5)  # engine rejects the past
        assert any("negative regeneration" in v.message for v in suite.violations)

    def test_double_grant_is_flagged(self):
        _, suite = make_suite()
        suite.token_granted(voice_state(has_token=True), 1.0)
        assert any("already holding" in v.message for v in suite.violations)


class TestCfpMonitor:
    def test_clean_cfp_cycle(self):
        _, suite = make_suite()
        suite.cfp_started(1.0, max_dur=0.05)
        suite.cfp_ended(1.04, duration=0.04, debt=0.002)
        suite.cfp_started(1.05, max_dur=0.05)
        suite.cfp_ended(1.06, duration=0.01, debt=0.001)
        assert suite.clean

    def test_overlapping_cfps_are_flagged(self):
        _, suite = make_suite()
        suite.cfp_started(1.0, max_dur=0.05)
        suite.cfp_started(1.01, max_dur=0.05)
        assert any("still open" in v.message for v in suite.violations)

    def test_start_before_debt_expiry_is_flagged(self):
        _, suite = make_suite()
        suite.cfp_started(1.0, max_dur=0.05)
        suite.cfp_ended(1.04, duration=0.04, debt=0.002)
        suite.cfp_started(1.0405, max_dur=0.05)  # 0.5 ms early
        assert any("debt" in v.message for v in suite.violations)

    def test_overrun_is_flagged(self):
        _, suite = make_suite()
        suite.cfp_started(1.0, max_dur=0.05)
        suite.cfp_ended(1.08, duration=0.08, debt=0.002)  # >> max + slack
        assert any("announced maximum" in v.message for v in suite.violations)

    def test_end_without_start_is_flagged(self):
        _, suite = make_suite()
        suite.cfp_ended(1.0, duration=0.01, debt=0.0)
        assert any("without a matching start" in v.message for v in suite.violations)


class TestFinalize:
    def test_admitted_voice_over_jitter_budget(self):
        _, suite = make_suite()
        session = Session("voice/0", VOICE, False, 0.0)
        suite.session_admitted(session)
        collector = MetricsCollector()
        tracker = collector.jitter.setdefault("voice/0", JitterTracker())
        # two deliveries with wildly different latencies -> huge jitter
        tracker.delivered(0.00, 0.001)
        tracker.delivered(0.04, 0.141)
        rendered = suite.finalize(collector, sim_time=10.0)
        assert any("Theorem 1 budget" in line for line in rendered)

    def test_admitted_video_over_delay_budget(self):
        _, suite = make_suite()
        suite.session_admitted(Session("video/0", VIDEO, False, 0.0))
        collector = MetricsCollector()
        collector.max_delay["video/0"] = VIDEO.max_delay * 2
        rendered = suite.finalize(collector, sim_time=10.0)
        assert any("Theorem 3 budget" in line for line in rendered)

    def test_sources_within_budget_are_silent(self):
        _, suite = make_suite()
        suite.session_admitted(Session("voice/0", VOICE, False, 0.0))
        suite.session_admitted(Session("video/0", VIDEO, False, 0.0))
        collector = MetricsCollector()
        collector.max_delay["video/0"] = VIDEO.max_delay / 2
        assert suite.finalize(collector, sim_time=10.0) == []

    def test_violation_list_is_capped_with_counter(self):
        _, suite = make_suite()
        for _ in range(suite.max_violations + 25):
            suite.record("token", "boom")
        rendered = suite.finalize(MetricsCollector(), sim_time=1.0)
        assert len(rendered) == suite.max_violations + 1
        assert rendered[-1] == "... 25 more"
        assert suite.total_violations == suite.max_violations + 25


class TestScenarioIntegration:
    def test_monitored_run_is_clean_and_reports(self):
        cfg = ScenarioConfig(
            scheme="proposed", seed=1, sim_time=8.0, warmup=1.0,
            load=1.0, new_voice_rate=0.3, new_video_rate=0.2,
            handoff_voice_rate=0.15, handoff_video_rate=0.1,
            mean_holding=20.0, monitor_invariants=True,
        )
        results = BssScenario(cfg).run()
        assert results["invariant_violations"] == []

    def test_unmonitored_run_has_no_key_and_no_observer(self):
        cfg = ScenarioConfig(
            scheme="proposed", seed=1, sim_time=8.0, warmup=1.0,
        )
        scenario = BssScenario(cfg)
        assert scenario.sim.step_observer is None
        results = scenario.run()
        assert "invariant_violations" not in results

    def test_conventional_scheme_attaches_sim_and_nav_only(self):
        cfg = ScenarioConfig(
            scheme="conventional", seed=1, sim_time=8.0, warmup=1.0,
            monitor_invariants=True,
        )
        scenario = BssScenario(cfg)
        assert scenario.sim.step_observer is not None
        results = scenario.run()
        assert results["invariant_violations"] == []
