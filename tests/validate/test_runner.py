"""Tier specs, validation_grid, ValidationReport, and the CLI wiring."""

import json

import pytest

from repro.__main__ import main
from repro.exec import PointFailure, SweepExecutionError, SweepExecutor
from repro.network.bss import SCHEMES, ScenarioConfig
from repro.validate import (
    TIERS,
    ClaimResult,
    TierSpec,
    ValidationReport,
    run_validation,
    validation_grid,
)


class TestTiers:
    def test_both_tiers_exist_and_are_consistent(self):
        for name, spec in TIERS.items():
            assert spec.name == name
            assert spec.schemes == SCHEMES
            assert spec.sim_time > spec.warmup
            assert spec.grid_points == (
                len(spec.schemes) * len(spec.loads) * len(spec.seeds)
            )
        assert len(TIERS["smoke"].loads) < len(TIERS["full"].loads)

    def test_smoke_loads_are_a_subset_reaching_the_heavy_extreme(self):
        smoke, full = TIERS["smoke"], TIERS["full"]
        assert set(smoke.loads) <= set(full.loads)
        assert max(smoke.loads) == max(full.loads)


class TestValidationGrid:
    def test_grid_is_monitored_and_complete(self):
        spec = TIERS["smoke"]
        grid = validation_grid("smoke")
        assert len(grid) == spec.grid_points
        assert all(isinstance(c, ScenarioConfig) for c in grid)
        assert all(c.monitor_invariants for c in grid)
        assert {c.scheme for c in grid} == set(spec.schemes)
        assert {c.load for c in grid} == set(spec.loads)

    def test_unknown_tier_raises(self):
        with pytest.raises(ValueError, match="unknown tier"):
            validation_grid("bogus")

    def test_custom_spec_accepted(self):
        spec = TierSpec(
            name="tiny", description="", schemes=("proposed",),
            loads=(1.0,), seeds=(1,), sim_time=10.0, warmup=1.0,
            fig5_populations=((1, 1),), fig5_sim_time=5.0,
        )
        grid = validation_grid(spec)
        assert len(grid) == 1 and grid[0].sim_time == 10.0


def _report(statuses):
    claims = tuple(
        ClaimResult(f"claim{i}", passed, f"detail {i}")
        for i, passed in enumerate(statuses)
    )
    return ValidationReport("smoke", claims, grid_rows=18, fig5_rows=3)


class TestValidationReport:
    def test_pass_fail_skip_partition(self):
        report = _report([True, False, None])
        assert not report.passed
        assert len(report.failed) == 1
        assert len(report.skipped) == 1
        assert _report([True, None]).passed  # skips are not failures

    def test_to_dict_counts_and_shape(self):
        d = _report([True, False, None]).to_dict()
        assert d["counts"] == {"pass": 1, "fail": 1, "skip": 1}
        assert d["passed"] is False
        assert len(d["claims"]) == 3

    def test_save_writes_json(self, tmp_path):
        path = _report([True]).save(tmp_path / "sub" / "report.json")
        loaded = json.loads(path.read_text())
        assert loaded["passed"] is True and loaded["tier"] == "smoke"

    def test_render_marks_each_claim(self):
        text = _report([True, False, None]).render()
        assert "FAILED" in text.splitlines()[0]
        assert "[PASS] claim0" in text
        assert "[FAIL] claim1" in text
        assert "[skip] claim2" in text


def _fake_point_fn(config: ScenarioConfig) -> dict:
    """Deterministic synthetic metrics shaped like the calibrated runs."""
    heavy = config.load >= max(TIERS["smoke"].loads)
    prop = config.scheme != "conventional"
    jit = config.seed * 1e-3
    return {
        "scheme": config.scheme,
        "load": config.load,
        "seed": config.seed,
        "dropping_probability": (0.1 if prop else 0.48) + jit if heavy else 0.0,
        "blocking_probability": (0.98 if prop else 0.48) + jit / 10 if heavy else 0.1,
        "voice_delay_mean": (0.0025 if prop else 0.0087) + jit / 10,
        "voice_delay_var": 1e-6 if prop else 7e-5,
        "video_delay_mean": (0.006 if prop else 0.027) + jit / 10,
        "data_delay_mean": ((0.15 if prop else 0.06) if heavy else 0.01) + jit,
        "goodput_utilization": (0.22 if prop else 0.25) if heavy else 0.1,
        "channel_busy_fraction": (0.64 if prop else 0.87) if heavy else 0.3,
        "invariant_violations": [],
        "events_processed": 10,
    }


class TestRunValidation:
    def test_smoke_passes_on_synthetic_rows(self):
        executor = SweepExecutor(point_fn=_fake_point_fn)
        report = run_validation("smoke", executor=executor, include_fig5=False)
        assert report.tier == "smoke"
        assert report.grid_rows == TIERS["smoke"].grid_points
        assert report.fig5_rows == 0
        assert not report.failed
        by_id = {c.claim_id: c for c in report.claims}
        assert by_id["fig5.bounds-conservative"].status == "skip"
        assert by_id["invariants.clean"].status == "pass"
        assert report.telemetry["total_points"] == report.grid_rows

    def test_broken_scheme_fails_the_specific_claim(self):
        def broken(config):
            row = _fake_point_fn(config)
            if config.scheme == "proposed":
                # e.g. Theorem 2 voice order reversed: the delay win is gone
                row["voice_delay_mean"] = 0.02
            return row

        executor = SweepExecutor(point_fn=broken)
        report = run_validation("smoke", executor=executor, include_fig5=False)
        assert not report.passed
        failed = {c.claim_id for c in report.failed}
        assert "fig8.voice-delay-proposed-wins" in failed


class TestValidateCli:
    def _patch(self, monkeypatch, report=None, error=None):
        def fake_run_validation(tier, *, executor=None, **kwargs):
            if error is not None:
                raise error
            executor.run([])  # so executor.summary() works
            return report

        monkeypatch.setattr("repro.validate.run_validation", fake_run_validation)

    def test_pass_exits_zero_and_writes_report(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        self._patch(monkeypatch, report=_report([True, None]))
        out = tmp_path / "verdict.json"
        assert main(["validate", "--tier", "smoke", "--out", str(out)]) == 0
        assert json.loads(out.read_text())["passed"] is True
        assert "PASSED" in capsys.readouterr().out

    def test_failed_claims_exit_one(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        self._patch(monkeypatch, report=_report([True, False]))
        assert main(["validate", "--out", str(tmp_path / "v.json")]) == 1
        assert "[FAIL]" in capsys.readouterr().out

    def test_permanently_failed_points_exit_two(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        failure = PointFailure(0, ScenarioConfig(), "RuntimeError('boom')")
        self._patch(monkeypatch, error=SweepExecutionError([failure]))
        assert main(["validate"]) == 2
        err = capsys.readouterr().err
        assert "permanently failed" in err and "boom" in err
