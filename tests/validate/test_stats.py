"""Student-t machinery and paired common-random-number comparisons."""

import math

import pytest

from repro.metrics.stats import OnlineStats
from repro.validate.stats import (
    ConfidenceInterval,
    mean_ci,
    paired_comparison,
    seed_values,
    stats_ci,
    student_t_cdf,
    t_critical,
)

#: textbook two-sided 95 % critical values
T95 = {1: 12.706, 2: 4.303, 10: 2.228, 30: 2.042}


class TestStudentT:
    def test_cdf_symmetry_and_midpoint(self):
        assert student_t_cdf(0.0, 5) == 0.5
        for t in (0.3, 1.0, 2.5, 7.0):
            assert student_t_cdf(t, 5) + student_t_cdf(-t, 5) == pytest.approx(1.0)

    def test_cdf_monotone_in_t(self):
        values = [student_t_cdf(t, 4) for t in (-3.0, -1.0, 0.0, 1.0, 3.0)]
        assert values == sorted(values)
        assert 0.0 < values[0] < values[-1] < 1.0

    def test_cdf_approaches_normal_for_large_df(self):
        # Phi(1.96) ~ 0.975
        assert student_t_cdf(1.96, 10_000) == pytest.approx(0.975, abs=1e-3)

    @pytest.mark.parametrize("df,expected", sorted(T95.items()))
    def test_t_critical_matches_tables(self, df, expected):
        assert t_critical(df, 0.95) == pytest.approx(expected, abs=2e-3)

    def test_t_critical_decreases_with_df(self):
        crits = [t_critical(df, 0.95) for df in (1, 2, 5, 10, 30, 100)]
        assert crits == sorted(crits, reverse=True)

    def test_t_critical_grows_with_confidence(self):
        assert t_critical(10, 0.99) > t_critical(10, 0.95) > t_critical(10, 0.5)

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            student_t_cdf(1.0, 0)
        with pytest.raises(ValueError):
            t_critical(0, 0.95)
        with pytest.raises(ValueError):
            t_critical(5, 1.0)


class TestConfidenceInterval:
    def test_mean_ci_known_case(self):
        # mean 2, sd 1, n=4 -> half width t_{3,.975} * 1/2 = 1.591
        ci = mean_ci([1.0, 2.0, 2.0, 3.0])
        assert ci.mean == pytest.approx(2.0)
        sem = math.sqrt(2.0 / 3.0 / 4.0)
        assert ci.half_width == pytest.approx(t_critical(3) * sem, rel=1e-6)
        assert ci.lo < 2.0 < ci.hi

    def test_below_two_samples_is_infinite(self):
        assert math.isinf(mean_ci([]).half_width)
        assert math.isinf(mean_ci([3.0]).half_width)
        assert mean_ci([3.0]).mean == 3.0

    def test_excludes_zero(self):
        assert ConfidenceInterval(5.0, 1.0, 3, 0.95).excludes_zero()
        assert ConfidenceInterval(-5.0, 1.0, 3, 0.95).excludes_zero()
        assert not ConfidenceInterval(0.5, 1.0, 3, 0.95).excludes_zero()
        assert not mean_ci([3.0]).excludes_zero()

    def test_stats_ci_matches_mean_ci(self):
        values = [0.1, 0.4, 0.2, 0.9, 0.3]
        acc = OnlineStats()
        for v in values:
            acc.add(v)
        a, b = stats_ci(acc), mean_ci(values)
        assert a.mean == pytest.approx(b.mean)
        assert a.half_width == pytest.approx(b.half_width)

    def test_as_dict_is_jsonable(self):
        d = mean_ci([1.0, 2.0, 3.0]).as_dict()
        assert set(d) == {"mean", "half_width", "lo", "hi", "n", "confidence"}


def _rows():
    out = []
    for seed, (a, b) in enumerate([(0.5, 0.9), (0.4, 0.8), (0.6, 1.0)], start=1):
        out.append({"scheme": "proposed", "load": 3.0, "seed": seed, "m": a})
        out.append({"scheme": "conventional", "load": 3.0, "seed": seed, "m": b})
    return out


class TestPairedComparison:
    def test_seed_values_filters_cell(self):
        vals = seed_values(_rows(), "proposed", 3.0, "m")
        assert vals == {1: 0.5, 2: 0.4, 3: 0.6}
        assert seed_values(_rows(), "proposed", 1.0, "m") == {}
        assert seed_values(_rows(), "proposed", 3.0, "missing") == {}

    def test_pairs_by_seed_and_signs(self):
        cmp = paired_comparison(_rows(), "m", "proposed", "conventional", 3.0)
        assert cmp.seeds == (1, 2, 3)
        assert cmp.deltas == pytest.approx((-0.4, -0.4, -0.4))
        assert cmp.consistently_negative()
        assert cmp.supports_less()
        assert not cmp.supports_greater()

    def test_unpaired_seeds_are_dropped(self):
        rows = _rows()
        rows.append({"scheme": "proposed", "load": 3.0, "seed": 9, "m": 0.0})
        cmp = paired_comparison(rows, "m", "proposed", "conventional", 3.0)
        assert cmp.seeds == (1, 2, 3)

    def test_ci_significance_with_mixed_signs(self):
        # one seed flips sign but the mean delta is far from zero
        rows = []
        for seed, delta in enumerate([-0.5, -0.6, -0.55, -0.52, 0.01], start=1):
            rows.append({"scheme": "a", "load": 1.0, "seed": seed, "m": delta})
            rows.append({"scheme": "b", "load": 1.0, "seed": seed, "m": 0.0})
        cmp = paired_comparison(rows, "m", "a", "b", 1.0)
        assert not cmp.consistently_negative()
        assert cmp.significantly_negative()
        assert cmp.supports_less()

    def test_no_overlap_supports_nothing(self):
        rows = [{"scheme": "a", "load": 1.0, "seed": 1, "m": 1.0}]
        cmp = paired_comparison(rows, "m", "a", "b", 1.0)
        assert cmp.n == 0
        assert not cmp.supports_less()
        assert not cmp.supports_greater()

    def test_as_dict_round_trips_through_json(self):
        import json

        cmp = paired_comparison(_rows(), "m", "proposed", "conventional", 3.0)
        assert json.loads(json.dumps(cmp.as_dict()))["metric"] == "m"
