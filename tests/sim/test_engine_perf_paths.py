"""Hot-path invariants of the overhauled kernel.

Covers what the inlined run() loop must preserve: tombstone compaction
under cancel/reschedule storms, same-timestamp batching vs the
(priority, insertion order) contract, deadline checks routed through a
tombstoned agenda head, live-fire-only ``events_processed`` accounting,
and the Timeout free-list (recycling must never change what a process
observes).
"""

import numpy as np
import pytest

from repro.sim import Simulator
from repro.sim.engine import _COMPACT_MIN_TOMBSTONES, _FREELIST_CAP


class TestTombstoneCompaction:
    def test_storm_fires_exactly_the_survivors_in_order(self):
        rng = np.random.default_rng(1234)
        sim = Simulator()
        fired = []
        handles = []
        for i in range(5_000):
            t = float(rng.uniform(0.0, 100.0))
            handles.append((t, i, sim.call_at(t, fired.append, (t, i))))
        order = rng.permutation(len(handles))
        cancelled = set(int(k) for k in order[:4_000])
        for k in cancelled:
            handles[k][2].cancel()
        sim.run()
        expected = sorted(
            (t, i) for t, i, _h in handles
            if i not in cancelled
        )
        assert fired == expected
        assert sim.events_processed == 1_000

    def test_compaction_keeps_heap_small_under_churn(self):
        sim = Simulator()
        for round_ in range(50):
            handles = [
                sim.call_at(sim.now + 1.0 + i * 1e-3, lambda: None)
                for i in range(200)
            ]
            for handle in handles[:-1]:
                handle.cancel()
            # cancelled mass crosses the threshold, so the agenda never
            # accumulates round after round of tombstones
            assert len(sim._heap) <= 2 * (round_ + 1) + 2 * _COMPACT_MIN_TOMBSTONES
            sim.run(until=sim.now + 0.5)
        sim.run()

    def test_cancel_during_run_compacts_safely(self):
        # compaction must happen in place: run() holds a local alias of
        # the heap, and a cancellation storm fired *from a callback*
        # triggers compaction mid-loop
        sim = Simulator()
        fired = []
        victims = [
            sim.call_at(10.0 + i * 1e-6, fired.append, i) for i in range(200)
        ]

        def massacre():
            for v in victims[1:]:
                v.cancel()

        sim.call_at(5.0, massacre)
        sim.run()
        assert fired == [0]
        assert sim.events_processed == 2  # massacre + the one survivor

    def test_reschedule_pattern_preserves_semantics(self):
        # cancel-then-reschedule (the DCF freeze/resume idiom) at scale
        rng = np.random.default_rng(7)
        sim = Simulator()
        fired = []
        state = {}

        def fire(key):
            fired.append((sim.now, key))

        for i in range(300):
            state[i] = sim.call_at(float(rng.uniform(1, 5)), fire, i)
        for _ in range(10):
            for i in rng.permutation(300)[:200]:
                i = int(i)
                state[i].cancel()
                state[i] = sim.call_at(
                    sim.now + float(rng.uniform(1, 5)), fire, i
                )
        sim.run()
        assert len(fired) == 300
        assert fired == sorted(fired, key=lambda pair: pair[0])
        assert sim.events_processed == 300


class TestSameTimestampBatching:
    def test_priority_then_insertion_order_within_batch(self):
        sim = Simulator()
        seen = []
        sim.call_at(1.0, seen.append, "c", priority=1)
        sim.call_at(1.0, seen.append, "a", priority=-1)
        sim.call_at(1.0, seen.append, "b", priority=0)
        sim.call_at(1.0, seen.append, "d", priority=1)
        sim.run()
        assert seen == ["a", "b", "c", "d"]

    def test_batch_spawned_same_instant_work_runs_in_the_batch(self):
        sim = Simulator()
        seen = []

        def spawn():
            seen.append("parent")
            sim.call_at(sim.now, seen.append, "child")

        sim.call_at(2.0, spawn)
        sim.call_at(2.0, seen.append, "sibling")
        sim.run()
        assert seen == ["parent", "sibling", "child"]
        assert sim.now == 2.0

    def test_storm_matches_single_step_reference(self):
        # the batched fast loop and the instrumented step()-by-step
        # path must produce identical firing orders
        def build(sim, log):
            rng = np.random.default_rng(99)
            times = rng.integers(0, 20, size=400) * 0.5
            prios = rng.integers(-2, 3, size=400)
            for i in range(400):
                sim.call_at(
                    float(times[i]), log.append, i, priority=int(prios[i])
                )

        fast_sim, fast_log = Simulator(), []
        build(fast_sim, fast_log)
        fast_sim.run()

        slow_sim, slow_log = Simulator(), []
        build(slow_sim, slow_log)
        slow_sim.step_observer = lambda t: None  # force instrumented path
        slow_sim.run()

        assert fast_log == slow_log
        assert fast_sim.events_processed == slow_sim.events_processed == 400


class TestDeadlineOverTombstones:
    def test_cancelled_head_does_not_mask_the_deadline(self):
        # regression: the deadline check must look at the next *live*
        # entry — a tombstone in front of it is popped, not compared
        sim = Simulator()
        seen = []
        doomed = sim.call_at(1.0, seen.append, "doomed")
        sim.call_at(2.0, seen.append, "live")
        doomed.cancel()
        sim.run(until=1.5)
        assert seen == []
        assert sim.now == 1.5
        assert sim.peek() == 2.0
        sim.run()
        assert seen == ["live"]

    def test_tombstones_beyond_deadline_are_left_alone(self):
        sim = Simulator()
        handle = sim.call_at(10.0, lambda: None)
        handle.cancel()
        sim.run(until=1.0)
        assert sim.now == 1.0
        assert sim.peek() == float("inf")

    def test_deadline_exactly_on_live_entry_after_tombstones(self):
        sim = Simulator()
        seen = []
        for i in range(5):
            sim.call_at(3.0, seen.append, i).cancel()
        sim.call_at(3.0, seen.append, "live")
        sim.run(until=3.0)
        assert seen == ["live"]


class TestEventsProcessedAccounting:
    def test_counts_live_fires_only(self):
        sim = Simulator()
        handles = [sim.call_at(1.0 + i, lambda: None) for i in range(10)]
        for handle in handles[:4]:
            handle.cancel()
        sim.run()
        assert sim.events_processed == 6

    def test_cancelled_after_fire_does_not_underflow(self):
        sim = Simulator()
        handle = sim.call_at(1.0, lambda: None)
        sim.run()
        handle.cancel()  # no heap entry behind it anymore
        sim.call_at(2.0, lambda: None)
        sim.run()
        assert sim.events_processed == 2

    def test_profiled_run_counts_identically(self):
        class CountingProfiler:
            events = 0

            def fire(self, item):
                self.events += 1
                item._fire() if hasattr(item, "_fn") else item._process()

        plain = Simulator()
        for i in range(20):
            h = plain.call_at(1.0 + i, lambda: None)
            if i % 3 == 0:
                h.cancel()
        plain.run()

        profiled = Simulator()
        profiled.profiler = CountingProfiler()
        for i in range(20):
            h = profiled.call_at(1.0 + i, lambda: None)
            if i % 3 == 0:
                h.cancel()
        profiled.run()

        assert profiled.events_processed == plain.events_processed
        assert profiled.profiler.events == plain.events_processed


class TestTimeoutFreeList:
    def test_numeric_yields_recycle_but_never_lie(self):
        sim = Simulator()
        observed = []

        def worker(period, steps):
            for _ in range(steps):
                yield period
                observed.append(sim.now)

        sim.process(worker(0.5, 1_000))
        sim.run()
        assert len(observed) == 1_000
        assert observed[0] == pytest.approx(0.5)
        assert observed[-1] == pytest.approx(500.0)
        # steady-state reuse: the pool holds recycled Timeouts, capped
        assert 1 <= len(sim._timeout_pool) <= _FREELIST_CAP

    def test_pool_is_capped(self):
        sim = Simulator()

        def worker():
            yield 0.1

        for _ in range(2 * _FREELIST_CAP):
            sim.process(worker())
        sim.run()
        assert len(sim._timeout_pool) <= _FREELIST_CAP

    def test_interrupt_storm_does_not_corrupt_the_pool(self):
        from repro.sim.process import Interrupt

        sim = Simulator()
        outcomes = []

        def sleeper():
            try:
                yield 10.0
                outcomes.append("slept")
            except Interrupt:
                outcomes.append("interrupted")
                yield 0.5
                outcomes.append("recovered")

        procs = [sim.process(sleeper()) for _ in range(50)]
        for k, proc in enumerate(procs):
            if k % 2 == 0:
                sim.call_at(1.0 + k * 1e-3, proc.interrupt)
        sim.run()
        assert outcomes.count("interrupted") == 25
        assert outcomes.count("recovered") == 25
        assert outcomes.count("slept") == 25

    def test_user_held_timeouts_are_never_recycled(self):
        sim = Simulator()
        kept = sim.timeout(1.0, value="mine")

        def worker():
            value = yield kept
            assert value == "mine"
            yield 0.5

        sim.process(worker())
        sim.run()
        # the explicit Timeout object stays the caller's: not pooled
        assert kept not in sim._timeout_pool
        assert kept.processed
