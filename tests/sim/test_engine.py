"""Unit tests for the DES kernel: clock, agenda, timers, run modes."""

import pytest

from repro.sim import Event, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_clock_starts_at_custom_time():
    assert Simulator(start_time=5.0).now == 5.0


def test_call_in_runs_callback_at_right_time():
    sim = Simulator()
    seen = []
    sim.call_in(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]


def test_call_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.call_at(4.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [4.0]


def test_scheduling_in_the_past_raises():
    sim = Simulator()
    sim.call_in(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.call_at(0.5, lambda: None)


def test_fifo_order_for_simultaneous_events():
    sim = Simulator()
    seen = []
    for i in range(5):
        sim.call_at(1.0, seen.append, i)
    sim.run()
    assert seen == [0, 1, 2, 3, 4]


def test_priority_breaks_ties_before_insertion_order():
    sim = Simulator()
    seen = []
    sim.call_at(1.0, seen.append, "late", priority=1)
    sim.call_at(1.0, seen.append, "early", priority=0)
    sim.run()
    assert seen == ["early", "late"]


def test_timer_cancel_prevents_firing():
    sim = Simulator()
    seen = []
    handle = sim.call_in(1.0, seen.append, "x")
    handle.cancel()
    sim.run()
    assert seen == []


def test_timer_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.call_in(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_run_until_deadline_stops_clock_at_deadline():
    sim = Simulator()
    seen = []
    sim.call_in(1.0, seen.append, "a")
    sim.call_in(10.0, seen.append, "b")
    sim.run(until=5.0)
    assert seen == ["a"]
    assert sim.now == 5.0


def test_run_until_deadline_event_exactly_at_deadline_fires():
    sim = Simulator()
    seen = []
    sim.call_in(5.0, seen.append, "edge")
    sim.run(until=5.0)
    assert seen == ["edge"]


def test_run_resumes_after_deadline():
    sim = Simulator()
    seen = []
    sim.call_in(10.0, seen.append, "b")
    sim.run(until=5.0)
    sim.run()
    assert seen == ["b"]
    assert sim.now == 10.0


def test_run_until_event_returns_its_value():
    sim = Simulator()
    ev = sim.event()
    sim.call_in(3.0, ev.succeed, 42)
    assert sim.run(until=ev) == 42
    assert sim.now == 3.0


def test_run_until_event_that_never_fires_raises():
    sim = Simulator()
    ev = sim.event()
    sim.call_in(1.0, lambda: None)
    with pytest.raises(RuntimeError):
        sim.run(until=ev)


def test_run_until_past_deadline_raises():
    sim = Simulator(start_time=10.0)
    with pytest.raises(ValueError):
        sim.run(until=5.0)


def test_peek_skips_cancelled_timers():
    sim = Simulator()
    h = sim.call_in(1.0, lambda: None)
    sim.call_in(2.0, lambda: None)
    h.cancel()
    assert sim.peek() == 2.0


def test_peek_empty_agenda_is_inf():
    assert Simulator().peek() == float("inf")


def test_nested_scheduling_from_callback():
    sim = Simulator()
    seen = []

    def outer():
        seen.append(("outer", sim.now))
        sim.call_in(1.0, inner)

    def inner():
        seen.append(("inner", sim.now))

    sim.call_in(1.0, outer)
    sim.run()
    assert seen == [("outer", 1.0), ("inner", 2.0)]


def test_reentrant_run_rejected():
    sim = Simulator()

    def body():
        with pytest.raises(RuntimeError):
            sim.run()
        yield 0.0

    sim.process(body())
    sim.run()


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = Event(sim)
    with pytest.raises(RuntimeError):
        _ = ev.value


def test_event_double_succeed_raises():
    sim = Simulator()
    ev = Event(sim)
    ev.succeed(1)
    with pytest.raises(Exception):
        ev.succeed(2)


def test_event_fail_requires_exception_instance():
    sim = Simulator()
    ev = Event(sim)
    with pytest.raises(TypeError):
        ev.fail("not an exception")  # type: ignore[arg-type]


def test_callback_after_processing_runs_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("v")
    sim.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == ["v"]
