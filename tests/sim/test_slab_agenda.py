"""SlabAgenda: the typed array-of-structs agenda the batched tier uses.

Entries live in parallel numpy slabs ordered by a heap of bare
``(time, seq, slot)`` triples; the contract mirrors the object agenda:
FIFO within equal timestamps, tombstoned cancellation, steady-state
zero allocation (slot reuse), and growth on demand.
"""

import pytest

from repro.sim.engine import SlabAgenda


class TestOrdering:
    def test_pops_in_time_order(self):
        agenda = SlabAgenda()
        for t in (3.0, 1.0, 2.0):
            agenda.push(t, kind=1, owner=int(t))
        popped = [agenda.pop() for _ in range(3)]
        assert popped == [(1.0, 1, 1), (2.0, 1, 2), (3.0, 1, 3)]

    def test_ties_pop_in_insertion_order(self):
        agenda = SlabAgenda()
        for owner in range(5):
            agenda.push(7.0, kind=2, owner=owner)
        assert [agenda.pop()[2] for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_peek_time_matches_next_pop(self):
        agenda = SlabAgenda()
        agenda.push(4.5, 1, 0)
        agenda.push(1.25, 2, 1)
        assert agenda.peek_time() == 1.25
        assert agenda.pop() == (1.25, 2, 1)
        assert agenda.peek_time() == 4.5

    def test_empty_agenda(self):
        agenda = SlabAgenda()
        assert len(agenda) == 0
        assert agenda.peek_time() == float("inf")
        with pytest.raises(IndexError):
            agenda.pop()


class TestCancellation:
    def test_cancelled_entries_are_skipped(self):
        agenda = SlabAgenda()
        keep = agenda.push(1.0, 1, 10)
        drop = agenda.push(0.5, 1, 11)
        agenda.cancel(drop)
        assert len(agenda) == 1
        assert agenda.peek_time() == 1.0
        assert agenda.pop() == (1.0, 1, 10)
        del keep

    def test_cancel_is_idempotent(self):
        agenda = SlabAgenda()
        slot = agenda.push(1.0, 3, 0)
        agenda.push(2.0, 1, 1)
        agenda.cancel(slot)
        agenda.cancel(slot)
        assert len(agenda) == 1
        assert agenda.pop() == (2.0, 1, 1)

    def test_cancel_all_then_peek_drains_tombstones(self):
        agenda = SlabAgenda()
        slots = [agenda.push(float(i), 1, i) for i in range(8)]
        for slot in slots:
            agenda.cancel(slot)
        assert len(agenda) == 0
        assert agenda.peek_time() == float("inf")


class TestSlotReuse:
    def test_slots_recycle_at_steady_state(self):
        # a small agenda cycled far past its capacity must never grow:
        # pop/cancel return slots to the free list
        agenda = SlabAgenda(capacity=4)
        for i in range(100):
            agenda.push(float(i), 1, i)
            assert agenda.pop() == (float(i), 1, i)
        assert len(agenda.times) == 4

    def test_grows_when_full(self):
        agenda = SlabAgenda(capacity=2)
        slots = [agenda.push(float(i), 1, i) for i in range(5)]
        assert len(agenda.times) >= 5
        assert len(set(slots)) == 5  # distinct slots across growth
        assert [agenda.pop()[2] for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_growth_preserves_pending_entries(self):
        agenda = SlabAgenda(capacity=1)
        agenda.push(2.0, 5, 42)
        agenda.push(1.0, 6, 43)  # forces growth with one entry live
        assert agenda.pop() == (1.0, 6, 43)
        assert agenda.pop() == (2.0, 5, 42)

    def test_kind_zero_round_trips(self):
        # kind 0 must tombstone and revive like any other (the encoding
        # is -1 - kind, so 0 maps to -1, not 0)
        agenda = SlabAgenda()
        slot = agenda.push(1.0, 0, 9)
        agenda.cancel(slot)
        assert len(agenda) == 0
        agenda.push(2.0, 0, 9)
        assert agenda.pop() == (2.0, 0, 9)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            SlabAgenda(capacity=0)
