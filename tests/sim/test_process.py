"""Unit tests for generator processes: waits, joins, interrupts, failures."""

import pytest

from repro.sim import AllOf, AnyOf, Interrupt, Simulator


def test_process_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def body():
        yield 2.0
        seen.append(sim.now)
        yield 3.0
        seen.append(sim.now)

    sim.process(body())
    sim.run()
    assert seen == [2.0, 5.0]


def test_process_waits_on_event_and_receives_value():
    sim = Simulator()
    ev = sim.event()
    got = []

    def body():
        value = yield ev
        got.append(value)

    sim.process(body())
    sim.call_in(1.0, ev.succeed, "payload")
    sim.run()
    assert got == ["payload"]


def test_process_return_value_via_join():
    sim = Simulator()
    got = []

    def child():
        yield 1.0
        return 99

    def parent():
        result = yield sim.process(child())
        got.append((sim.now, result))

    sim.process(parent())
    sim.run()
    assert got == [(1.0, 99)]


def test_failed_event_raises_inside_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def body():
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(body())
    sim.call_in(1.0, ev.fail, ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_exception_escaping_process_marks_it_failed():
    sim = Simulator()

    def body():
        yield 1.0
        raise KeyError("inner")

    proc = sim.process(body())
    sim.run()
    assert proc.triggered and not proc.ok
    with pytest.raises(KeyError):
        _ = proc.value


def test_unhandled_failure_propagates_to_joiner():
    sim = Simulator()

    def child():
        yield 1.0
        raise RuntimeError("child died")

    caught = []

    def parent():
        try:
            yield sim.process(child())
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(parent())
    sim.run()
    assert caught == ["child died"]


def test_interrupt_delivers_cause():
    sim = Simulator()
    caught = []

    def body():
        try:
            yield 100.0
        except Interrupt as exc:
            caught.append((sim.now, exc.cause))

    proc = sim.process(body())
    sim.call_in(2.0, proc.interrupt, "preempted")
    sim.run()
    assert caught == [(2.0, "preempted")]


def test_interrupted_wait_does_not_resume_twice():
    sim = Simulator()
    resumptions = []

    def body():
        try:
            yield 5.0
        except Interrupt:
            pass
        resumptions.append(sim.now)
        yield 10.0
        resumptions.append(sim.now)

    proc = sim.process(body())
    sim.call_in(1.0, proc.interrupt)
    sim.run()
    # After the interrupt at t=1 the original t=5 timeout must be ignored;
    # the follow-up 10s wait completes at t=11.
    assert resumptions == [1.0, 11.0]


def test_interrupt_dead_process_raises():
    sim = Simulator()

    def body():
        yield 1.0

    proc = sim.process(body())
    sim.run()
    with pytest.raises(RuntimeError):
        proc.interrupt()


def test_yielding_garbage_raises_typeerror_in_process():
    sim = Simulator()
    caught = []

    def body():
        try:
            yield "nonsense"
        except TypeError as exc:
            caught.append("typed")

    sim.process(body())
    sim.run()
    assert caught == ["typed"]


def test_non_generator_rejected():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_process_start_is_deterministic_in_creation_order():
    sim = Simulator()
    seen = []

    def body(tag):
        seen.append(tag)
        yield 0.0

    sim.process(body("a"))
    sim.process(body("b"))
    sim.run()
    assert seen[:2] == ["a", "b"]


def test_anyof_fires_on_first():
    sim = Simulator()
    got = []

    def body():
        t1 = sim.timeout(5.0, value="slow")
        t2 = sim.timeout(2.0, value="fast")
        result = yield AnyOf(sim, [t1, t2])
        got.append((sim.now, sorted(result.values())))

    sim.process(body())
    sim.run()
    assert got[0][0] == 2.0
    assert "fast" in got[0][1]


def test_allof_waits_for_all():
    sim = Simulator()
    got = []

    def body():
        t1 = sim.timeout(5.0, value="slow")
        t2 = sim.timeout(2.0, value="fast")
        result = yield AllOf(sim, [t1, t2])
        got.append((sim.now, set(result.values())))

    sim.process(body())
    sim.run()
    assert got == [(5.0, {"slow", "fast"})]


def test_two_processes_interleave():
    sim = Simulator()
    seen = []

    def ping():
        for _ in range(3):
            yield 2.0
            seen.append(("ping", sim.now))

    def pong():
        yield 1.0
        for _ in range(3):
            yield 2.0
            seen.append(("pong", sim.now))

    sim.process(ping())
    sim.process(pong())
    sim.run()
    assert seen == [
        ("ping", 2.0), ("pong", 3.0),
        ("ping", 4.0), ("pong", 5.0),
        ("ping", 6.0), ("pong", 7.0),
    ]
