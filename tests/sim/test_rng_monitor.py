"""Unit tests for named RNG streams and monitoring helpers."""

import pytest

from repro.sim import RandomStreams, TimeSeries, TimeWeighted, Trace


def test_same_name_same_object():
    streams = RandomStreams(1)
    assert streams.get("a") is streams.get("a")


def test_reproducible_across_instances():
    a = RandomStreams(42).get("chan").random(5)
    b = RandomStreams(42).get("chan").random(5)
    assert list(a) == list(b)


def test_different_names_differ():
    streams = RandomStreams(42)
    a = streams.get("x").random(5)
    b = streams.get("y").random(5)
    assert list(a) != list(b)


def test_different_seeds_differ():
    a = RandomStreams(1).get("x").random(5)
    b = RandomStreams(2).get("x").random(5)
    assert list(a) != list(b)


def test_fork_is_deterministic_and_distinct():
    base = RandomStreams(7)
    f1 = base.fork(0)
    f2 = RandomStreams(7).fork(0)
    assert f1.master_seed == f2.master_seed
    assert f1.master_seed != base.master_seed


def test_negative_seed_rejected():
    with pytest.raises(ValueError):
        RandomStreams(-1)


def test_contains_reflects_created_streams():
    streams = RandomStreams(0)
    assert "a" not in streams
    streams.get("a")
    assert "a" in streams


def test_timeseries_records_pairs():
    ts = TimeSeries()
    ts.record(0.0, 1.0)
    ts.record(1.0, 2.0)
    assert list(ts) == [(0.0, 1.0), (1.0, 2.0)]
    assert len(ts) == 2


def test_timeseries_rejects_backwards_time():
    ts = TimeSeries()
    ts.record(5.0, 0.0)
    with pytest.raises(ValueError):
        ts.record(4.0, 0.0)


def test_timeweighted_constant_signal():
    tw = TimeWeighted()
    tw.update(0.0, 3.0)
    assert tw.average(10.0) == pytest.approx(3.0)


def test_timeweighted_step_signal():
    tw = TimeWeighted()
    tw.update(0.0, 0.0)
    tw.update(5.0, 1.0)
    # half the window at 0, half at 1
    assert tw.average(10.0) == pytest.approx(0.5)


def test_timeweighted_zero_span_returns_current():
    tw = TimeWeighted(start_time=2.0, initial=7.0)
    assert tw.average(2.0) == 7.0
    assert tw.current == 7.0


def test_timeweighted_rejects_backwards_time():
    tw = TimeWeighted()
    tw.update(3.0, 1.0)
    with pytest.raises(ValueError):
        tw.update(2.0, 1.0)


def test_trace_disabled_records_nothing():
    tr = Trace(enabled=False)
    tr.log(0.0, "tx", station=1)
    assert tr.records == []


def test_trace_enabled_records_and_filters():
    tr = Trace(enabled=True)
    tr.log(0.0, "tx", station=1)
    tr.log(1.0, "rx", station=2)
    assert len(tr.records) == 2
    assert tr.of_kind("tx") == [(0.0, {"station": 1})]
    tr.filters = {"rx"}
    tr.log(2.0, "tx", station=3)
    tr.log(2.0, "rx", station=3)
    assert len(tr.records) == 3
