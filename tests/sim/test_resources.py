"""Unit tests for Resource and Store primitives."""

import pytest

from repro.sim import Resource, Simulator, Store


def test_resource_grants_immediately_when_free():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def body():
        req = res.request()
        yield req
        log.append(sim.now)
        res.release(req)

    sim.process(body())
    sim.run()
    assert log == [0.0]


def test_resource_fifo_queueing():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def body(tag, hold):
        req = res.request()
        yield req
        log.append((tag, sim.now))
        yield hold
        res.release(req)

    sim.process(body("a", 2.0))
    sim.process(body("b", 2.0))
    sim.process(body("c", 2.0))
    sim.run()
    assert log == [("a", 0.0), ("b", 2.0), ("c", 4.0)]


def test_resource_capacity_two_runs_pairs():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    log = []

    def body(tag):
        req = res.request()
        yield req
        log.append((tag, sim.now))
        yield 1.0
        res.release(req)

    for tag in "abcd":
        sim.process(body(tag))
    sim.run()
    assert log == [("a", 0.0), ("b", 0.0), ("c", 1.0), ("d", 1.0)]


def test_resource_counts():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder():
        req = res.request()
        yield req
        assert res.count == 1
        yield 1.0
        res.release(req)

    def waiter():
        req = res.request()
        yield req
        res.release(req)

    sim.process(holder())
    sim.process(waiter())
    sim.call_at(0.5, lambda: None)
    sim.run(until=0.5)
    assert res.count == 1
    assert res.queued == 1
    sim.run()
    assert res.count == 0


def test_resource_invalid_capacity():
    with pytest.raises(ValueError):
        Resource(Simulator(), capacity=0)


def test_release_unheld_request_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    req = res.request()
    sim.run()
    res.release(req)
    with pytest.raises(RuntimeError):
        res.release(req)


def test_store_put_then_get_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for i in range(3):
            yield store.put(i)
            yield 1.0

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append((item, sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert [i for i, _ in got] == [0, 1, 2]


def test_store_get_blocks_until_item_available():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, sim.now))

    def producer():
        yield 3.0
        yield store.put("late")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [("late", 3.0)]


def test_store_bounded_put_blocks_when_full():
    sim = Simulator()
    store = Store(sim, capacity=1)
    events = []

    def producer():
        yield store.put("a")
        events.append(("put-a", sim.now))
        yield store.put("b")
        events.append(("put-b", sim.now))

    def consumer():
        yield 5.0
        item = yield store.get()
        events.append(("got-" + item, sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert ("put-a", 0.0) in events
    assert ("put-b", 5.0) in events


def test_store_len_tracks_items():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    sim.run()
    assert len(store) == 1


def test_store_invalid_capacity():
    with pytest.raises(ValueError):
        Store(Simulator(), capacity=0)
