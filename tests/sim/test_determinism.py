"""Determinism and stress tests for the DES kernel."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator


def run_random_workload(seed, n_timers=200):
    """A tangle of timers that spawn more timers; returns the event log."""
    rng = np.random.Generator(np.random.PCG64(seed))
    sim = Simulator()
    log = []

    def fire(tag, depth):
        log.append((round(sim.now, 12), tag))
        if depth > 0:
            for k in range(int(rng.integers(0, 3))):
                sim.call_in(
                    float(rng.random() * 0.5) + 1e-9, fire, f"{tag}.{k}", depth - 1
                )

    for i in range(n_timers):
        sim.call_at(float(rng.random() * 10.0), fire, str(i), 2)
    sim.run()
    return log


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_property_runs_are_bit_reproducible(seed):
    assert run_random_workload(seed) == run_random_workload(seed)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_property_time_never_goes_backwards(seed):
    log = run_random_workload(seed)
    times = [t for t, _ in log]
    assert times == sorted(times)


def test_large_heap_drains_completely():
    sim = Simulator()
    fired = [0]
    for i in range(20_000):
        sim.call_at(i * 1e-4, lambda: fired.__setitem__(0, fired[0] + 1))
    sim.run()
    assert fired[0] == 20_000
    assert sim.peek() == float("inf")


def test_cancellations_under_load():
    sim = Simulator()
    fired = []
    handles = [
        sim.call_at(1.0 + i * 1e-6, fired.append, i) for i in range(1000)
    ]
    for h in handles[::2]:
        h.cancel()
    sim.run()
    assert fired == list(range(1, 1000, 2))


def test_interleaved_processes_and_timers_deterministic():
    def build():
        sim = Simulator()
        log = []

        def proc(tag, period):
            while sim.now < 5.0:
                yield period
                log.append((round(sim.now, 10), tag))

        for i, period in enumerate((0.1, 0.25, 0.3)):
            sim.process(proc(f"p{i}", period))
        for i in range(10):
            sim.call_at(i * 0.5 + 0.01, log.append, (round(sim.now, 10), f"t{i}"))
        sim.run(until=5.0)
        return log

    assert build() == build()
