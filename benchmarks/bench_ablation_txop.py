"""Ablation — HCF-style TXOP bursts (the paper's 802.11e outlook).

The paper closes by noting the scheme "can be easily incorporated into
the hybrid coordination function (HCF) access scheme in the IEEE
802.11e standard".  The TXOP extension does exactly that: a polled
backlogged station drains up to k frames per poll, SIFS-separated.
Under bursty video this removes per-packet poll overhead the same way
CF-MultiPoll removes per-station overhead.
"""

from repro.experiments import format_table
from repro.network import BssScenario, ScenarioConfig

from conftest import save_artifact


def run_cell(txop: int) -> dict:
    cfg = ScenarioConfig(
        scheme="proposed",
        seed=7,
        sim_time=40.0,
        warmup=4.0,
        load=1.5,
        new_voice_rate=0.2,
        new_video_rate=0.4,  # video-heavy: bursts are where TXOP pays
        handoff_voice_rate=0.1,
        handoff_video_rate=0.2,
        mean_holding=20.0,
        n_data_stations=3,
        txop_packets=txop,
        # freeze the bandwidth manager so both cells admit the exact
        # same calls — the comparison then isolates the polling change
        adaptive_bandwidth=False,
    )
    r = BssScenario(cfg).run()
    return {
        "txop packets": txop,
        "video delay (ms)": r["video_delay_mean"] * 1000,
        "video delivered": r["video_delivered"],
        "busy fraction": r["channel_busy_fraction"],
    }


def test_ablation_txop(benchmark):
    results = benchmark.pedantic(
        lambda: [run_cell(1), run_cell(4)],
        rounds=1,
        iterations=1,
    )
    save_artifact(
        "ablation_txop.txt",
        format_table(
            results,
            ["txop packets", "video delay (ms)", "video delivered",
             "busy fraction"],
            title="Ablation - HCF-style TXOP under video-heavy load",
        ),
    )
    single, burst = results
    # bursts must not lose delivered traffic, and should cut the video
    # delay (each frame's fragments drain on one poll instead of
    # several poll round-trips)
    assert burst["video delivered"] >= 0.95 * single["video delivered"]
    assert burst["video delay (ms)"] <= single["video delay (ms)"] * 1.02
