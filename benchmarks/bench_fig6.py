"""Fig. 6 — handoff dropping probability vs offered load.

Paper shape: the proposed scheme pins dropping near/below its
threshold across the sweep (channel II + adaptive allocation), while
the conventional protocol's dropping climbs with load.
"""

from repro.experiments import fig6, format_table

from conftest import SWEEP_LOADS, by_scheme_load, save_artifact


def test_fig6(benchmark, sweep_rows):
    rows = benchmark(fig6, sweep_rows)
    save_artifact(
        "fig6.txt",
        format_table(
            rows,
            ["scheme", "load", "dropping_probability", "dropping_probability_std"],
            title="Fig. 6 - handoff dropping probability vs offered load",
        ),
    )
    proposed = by_scheme_load(rows, "proposed")
    conventional = by_scheme_load(rows, "conventional")
    top = max(SWEEP_LOADS)

    # conventional dropping grows with load and ends clearly above the
    # proposed scheme's
    assert (
        conventional[top]["dropping_probability"]
        > conventional[min(SWEEP_LOADS)]["dropping_probability"]
    )
    assert (
        proposed[top]["dropping_probability"]
        < conventional[top]["dropping_probability"]
    )
    # the protection holds the proposed scheme's dropping low on
    # average across the sweep (individual light-load points see very
    # few handoff attempts, so they are noisy)
    mean_drop = sum(
        proposed[load]["dropping_probability"] for load in SWEEP_LOADS
    ) / len(SWEEP_LOADS)
    assert mean_drop <= 0.2

