"""Fig. 8 — average access delay of voice traffic (+ variance).

Paper shape: near-parity at light load; at heavy load the conventional
protocol's voice delay is several times the proposed scheme's, and the
variance ordering is multipoll < single-poll < conventional.
"""

from repro.experiments import fig8, format_table

from conftest import SWEEP_LOADS, by_scheme_load, save_artifact


def test_fig8(benchmark, sweep_rows):
    rows = benchmark(fig8, sweep_rows)
    save_artifact(
        "fig8.txt",
        format_table(
            rows,
            ["scheme", "load", "voice_delay_mean", "voice_delay_var"],
            title="Fig. 8 - average access delay of voice traffic (s, s^2)",
        ),
    )
    proposed = by_scheme_load(rows, "proposed")
    multipoll = by_scheme_load(rows, "proposed-multipoll")
    conventional = by_scheme_load(rows, "conventional")
    top = max(SWEEP_LOADS)

    # heavy load: conventional voice delay above the proposed scheme's
    # (the gap is bounded by the 30 ms jitter deadline — packets that
    # would show the conventional protocol's worst delays are discarded
    # as losses instead, so the mean ordering is strict but not huge)
    assert (
        conventional[top]["voice_delay_mean"]
        > 1.2 * proposed[top]["voice_delay_mean"]
    )
    # the proposed scheme's voice delay stays essentially flat
    assert proposed[top]["voice_delay_mean"] < 0.010  # < 10 ms
    # the paper's headline Fig. 8 numbers are the variances
    # (conventional 136 vs proposed 21 / multipoll 15): conventional is
    # by far the most erratic
    assert (
        conventional[top]["voice_delay_var"]
        > 2 * proposed[top]["voice_delay_var"]
    )
    assert (
        conventional[top]["voice_delay_var"]
        > 2 * multipoll[top]["voice_delay_var"]
    )

