"""Ablation — adaptive bandwidth manager on vs off.

Design claim (Section II-C): growing channel II under dropping
pressure is what keeps the handoff dropping probability pinned; with
the manager frozen at its initial (small) channel II, handoffs at
heavy load are rejected far more often.
"""

from repro.experiments import format_table
from repro.network import BssScenario, ScenarioConfig

from conftest import save_artifact


def run_cell(adaptive: bool) -> dict:
    cfg = ScenarioConfig(
        scheme="proposed",
        seed=5,
        sim_time=50.0,
        warmup=5.0,
        load=2.0,
        new_voice_rate=0.3,
        new_video_rate=0.2,
        handoff_voice_rate=0.12,
        handoff_video_rate=0.08,
        mean_holding=20.0,
        n_data_stations=3,
        adaptive_bandwidth=adaptive,
    )
    r = BssScenario(cfg).run()
    return {
        "bandwidth manager": "adaptive" if adaptive else "frozen",
        "dropping prob": r["dropping_probability"],
        "blocking prob": r["blocking_probability"],
        "handoff attempts": r["call_attempts_handoff"],
    }


def test_ablation_adaptive_bandwidth(benchmark):
    results = benchmark.pedantic(
        lambda: [run_cell(True), run_cell(False)],
        rounds=1,
        iterations=1,
    )
    adaptive, frozen = results
    # the adaptive manager must not drop more handoffs than the frozen
    # allocation, and should meaningfully improve on it
    assert adaptive["dropping prob"] <= frozen["dropping prob"]
    save_artifact(
        "ablation_bandwidth.txt",
        format_table(
            results,
            ["bandwidth manager", "dropping prob", "blocking prob",
             "handoff attempts"],
            title="Ablation - adaptive bandwidth allocation at heavy load",
        ),
    )
