"""ESS grid throughput: how fast the call-level coordinator shards.

Runs one pinned-seed ESS scenario (calls fidelity — the tier meant to
scale to hundreds of cells) twice: once for a byte-identity determinism
check, once timed.  Lands cells/sec and handoff events/sec under the
``ess_grid`` section of the committed ``BENCH_KERNEL.json`` via
:func:`repro.bench.merge_section` — a top-level section like
``parallel_sweep``, outside the gated ``benchmarks`` map, because wall
throughput is machine-relative; the pinned event *counts* recorded
alongside are not, and the assertions below pin them.
"""

import pathlib
import time

from repro.bench import merge_section
from repro.exec import canonical_json
from repro.ess import EssConfig, EssCoordinator
from repro.faults import LinkFault

from conftest import RESULTS_DIR, save_artifact

BASELINE = pathlib.Path(__file__).parent.parent / "BENCH_KERNEL.json"

#: pinned workload: a 4x4 grid under heavy roaming with one mid-run
#: backhaul outage, so the bench exercises routing + failover too
ESS_BENCH_CONFIG = EssConfig(
    rows=4, cols=4, seed=20260808, epochs=6, epoch_length=20.0,
    new_call_rate=0.2, mean_holding=40.0, mean_residence=12.0,
    backhaul_faults=(LinkFault("ap/1x1", "ap/1x2", start=40.0, end=80.0),),
)


def _run():
    coordinator = EssCoordinator(ESS_BENCH_CONFIG)
    start = time.perf_counter()
    coordinator.run()
    wall = time.perf_counter() - start
    return coordinator, wall


def test_ess_grid_throughput():
    first, _ = _run()
    second, wall = _run()
    # byte-identical reports: the coordinator is a pure function of its
    # config, which is what makes the section's counts pinnable
    assert canonical_json(first.report()) == canonical_json(second.report())
    report = second.report()
    assert report["passed"], report["conservation"]["violations"]

    cfg = ESS_BENCH_CONFIG
    cell_epochs = cfg.rows * cfg.cols * cfg.epochs
    handoffs = report["totals"]["handoff_attempts"]
    assert handoffs > 0
    assert report["backhaul"]["failovers"] > 0  # outage was exercised

    payload = {
        "config": {
            "grid": f"{cfg.rows}x{cfg.cols}",
            "epochs": cfg.epochs,
            "epoch_length_s": cfg.epoch_length,
            "seed": cfg.seed,
        },
        # pinned-seed counts: machine-independent, change only with the
        # model (update this section deliberately when they do)
        "counts": {
            "created": report["totals"]["created"],
            "handoff_attempts": handoffs,
            "backhaul_failovers": report["backhaul"]["failovers"],
        },
        # machine-relative throughput (not gated)
        "wall_s": round(wall, 4),
        "cells_per_sec": round(cell_epochs / wall) if wall > 0 else 0,
        "handoff_events_per_sec": round(handoffs / wall) if wall > 0 else 0,
    }
    merge_section(BASELINE, "ess_grid", payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    merge_section(RESULTS_DIR / "bench-report.json", "ess_grid", payload)
    save_artifact(
        "ess_grid.txt",
        "\n".join(
            [
                f"ESS grid bench - {payload['config']['grid']}, "
                f"{cfg.epochs} epochs, seed {cfg.seed}",
                f"  created={payload['counts']['created']} "
                f"handoffs={handoffs} "
                f"failovers={payload['counts']['backhaul_failovers']}",
                f"  wall={payload['wall_s']}s "
                f"cells/s={payload['cells_per_sec']} "
                f"handoffs/s={payload['handoff_events_per_sec']}",
            ]
        ),
    )
