"""Simulator performance — events/second of the full stack.

Not a paper figure: tracks the cost of one evaluation point so sweep
regressions are visible.  One 10-simulated-second proposed-scheme BSS
at nominal load.
"""

from repro.network import BssScenario, ScenarioConfig


def one_point():
    cfg = ScenarioConfig(
        scheme="proposed",
        seed=2,
        sim_time=10.0,
        warmup=1.0,
        new_voice_rate=0.3,
        new_video_rate=0.2,
        handoff_voice_rate=0.15,
        handoff_video_rate=0.1,
        mean_holding=10.0,
    )
    return BssScenario(cfg).run()


def test_scenario_throughput(benchmark):
    result = benchmark.pedantic(one_point, rounds=3, iterations=1)
    assert result["data_delivered"] > 0
    # simulation throughput alongside the wall-time stats
    mean_wall = benchmark.stats.stats.mean
    benchmark.extra_info["sim_events"] = result["events_processed"]
    benchmark.extra_info["events_per_sec"] = (
        result["events_processed"] / mean_wall if mean_wall > 0 else 0.0
    )
