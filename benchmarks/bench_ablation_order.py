"""Ablation — Theorem 2's voice service order.

Design claim: scanning voice token buffers in ascending-rate order
minimizes the average voice waiting time; the reversed order must not
beat it.  Verified both analytically (the SPT waiting-time identity)
and in simulation with heterogeneous voice rates.
"""

from repro.core import total_waiting_time
from repro.experiments import format_table
from repro.mac.backoff import StandardBEB
from repro.metrics import MetricsCollector
from repro.network.bss import RT_PACKET_BITS
from repro.traffic import VoiceParams

from conftest import save_artifact


def run_order(order: str, sim_time: float = 40.0) -> dict:
    """A static population of heterogeneous-rate voice sources."""
    from repro.core import QosAccessPoint, QosApConfig
    from repro.mac import DcfTransmitter, Nav, RealTimeStation
    from repro.phy import BitErrorModel, Channel, PhyTiming
    from repro.sim import RandomStreams, Simulator
    from repro.traffic import OnOffVoiceSource, TrafficKind

    sim = Simulator()
    timing = PhyTiming()
    streams = RandomStreams(31)
    channel = Channel(sim, BitErrorModel(0.0, streams.get("ch")))
    nav = Nav()
    collector = MetricsCollector(warmup=2.0)
    ap = QosAccessPoint(
        sim, channel, timing, nav,
        config=QosApConfig(
            rt_packet_bits=RT_PACKET_BITS,
            adaptation_interval=0.0,
            voice_order=order,
        ),
    )
    rates = (10.0, 20.0, 40.0, 80.0)
    for i, rate in enumerate(rates):
        sid = f"voice/{i}"
        qos = VoiceParams(rate=rate, max_jitter=0.5, packet_bits=RT_PACKET_BITS,
                          mean_on=1e9)  # always talking: steady demand
        session = ap.admission.try_admit_voice(sid, qos)
        assert session is not None
        dcf = DcfTransmitter(
            sim, channel, timing, StandardBEB(8), streams.get(f"dcf/{sid}"),
            sid, nav,
        )
        sta = RealTimeStation(
            sim, sid, dcf, "ap", TrafficKind.VOICE, qos,
            on_packet_outcome=collector.packet_outcome,
        )
        ap.register_station(sta)
        ap.policy.add_session(session)
        sta.grant()
        source = OnOffVoiceSource(
            sim, sid, sta.packet_arrival, streams.get(f"traffic/{sid}"),
            qos, start_talking=True,
        )
        sta.activity_probe = lambda src=source: src.talking
        source.start()
    sim.run(until=sim_time)
    from repro.traffic import TrafficKind as TK

    return {
        "voice order": order,
        "mean voice delay (ms)": collector.access_delay[TK.VOICE].mean * 1000,
        "delivered": collector.delivered[TK.VOICE],
    }


def test_theorem2_analytic_identity(benchmark):
    demands = [5.0, 1.0, 3.0, 2.0]
    spt = benchmark(total_waiting_time, sorted(demands))
    assert spt <= total_waiting_time(demands)
    assert spt <= total_waiting_time(sorted(demands, reverse=True))


def test_ablation_voice_order(benchmark):
    results = benchmark.pedantic(
        lambda: [run_order("ascending"), run_order("descending")],
        rounds=1,
        iterations=1,
    )
    ascending, descending = results
    # Theorem 2: the ascending (SPT) order minimizes average waiting
    assert (
        ascending["mean voice delay (ms)"]
        <= descending["mean voice delay (ms)"] * 1.05
    )
    save_artifact(
        "ablation_order.txt",
        format_table(
            results,
            ["voice order", "mean voice delay (ms)", "delivered"],
            title="Ablation - Theorem 2 voice scan order "
                  "(rates 10/20/40/80 pkt/s)",
        ),
    )
