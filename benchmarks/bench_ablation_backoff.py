"""Ablation — partitioned priority backoff vs plain BEB.

Design claim (Section II-A): partitioning the contention window by
priority gives high-priority requests strict precedence; plain BEB
treats a handoff request like any data frame.  We race one
handoff-priority station against a crowd of data stations under both
policies and compare the high-priority station's mean access delay.
"""

from repro.core import PriorityBackoff
from repro.experiments import format_table
from repro.mac import DcfTransmitter, Frame, FrameType, Nav, StandardBEB
from repro.mac.backoff import LEVEL_HANDOFF, LEVEL_NEW_OR_DATA
from repro.metrics import OnlineStats
from repro.phy import BitErrorModel, Channel, PhyTiming

from conftest import save_artifact


def run_races(policy_name: str, n_low: int = 8, n_races: int = 150) -> dict:
    from repro.sim import RandomStreams, Simulator

    sim = Simulator()
    timing = PhyTiming()
    streams = RandomStreams(13)
    channel = Channel(sim, BitErrorModel(0.0, streams.get("ch")))
    nav = Nav()
    if policy_name == "priority":
        policy = PriorityBackoff(alphas=(4, 4, 8))
    else:
        policy = StandardBEB(cw_min=16)

    txs = {}
    for sid in ["hi"] + [f"lo{i}" for i in range(n_low)]:
        txs[sid] = DcfTransmitter(
            sim, channel, timing, policy, streams.get(sid), sid, nav
        )

    hi_delay = OnlineStats()
    hi_level = LEVEL_HANDOFF

    for _ in range(n_races):
        base = sim.now + 0.01
        start = {}

        def cb(sid, ok):
            if sid == "hi" and ok:
                hi_delay.add(sim.now - start["hi"])

        # Occupy the medium first so every contender arrives during a
        # busy period and must draw a backoff — the race is then decided
        # purely by the policy, not by enqueue order.
        def occupy():
            blocker = Frame(FrameType.DATA, src="blocker", dest="ap",
                            payload_bits=4096)
            channel.transmit(blocker, blocker.airtime(timing), sender=None)

        sim.call_at(base, occupy)
        for sid, tx in txs.items():
            frame = Frame(FrameType.REQUEST if sid == "hi" else FrameType.DATA,
                          src=sid, dest="ap",
                          payload_bits=0 if sid == "hi" else 4096)
            level = hi_level if sid == "hi" else LEVEL_NEW_OR_DATA

            def kickoff(tx=tx, frame=frame, level=level, sid=sid):
                start[sid] = sim.now
                tx.enqueue(frame, level, lambda ok, sid=sid: cb(sid, ok))

            sim.call_at(base + 1e-4, kickoff)
        sim.run()
    return {
        "policy": policy_name,
        "mean handoff-request delay (ms)": hi_delay.mean * 1000,
        "max (ms)": hi_delay.max * 1000,
        "samples": hi_delay.count,
    }


def test_ablation_priority_backoff(benchmark):
    results = benchmark.pedantic(
        lambda: [run_races("priority"), run_races("beb")],
        rounds=1,
        iterations=1,
    )
    priority, beb = results
    # the partitioned policy must serve the handoff request faster,
    # both on average and in the tail
    assert (
        priority["mean handoff-request delay (ms)"]
        < beb["mean handoff-request delay (ms)"]
    )
    assert priority["max (ms)"] < beb["max (ms)"]
    save_artifact(
        "ablation_backoff.txt",
        format_table(
            results,
            ["policy", "mean handoff-request delay (ms)", "max (ms)", "samples"],
            title="Ablation - priority backoff vs plain BEB "
                  "(1 handoff station vs 8 data stations)",
        ),
    )
