"""Ablation — adaptive contention window on vs off.

Design claim (Section II-A, end): tuning the window toward the
Cali-Conti-Gregori optimum raises saturation goodput relative to a
fixed small window, which pays one collision per window doubling and
resets to the (wrong) minimum after every success.
"""

from repro.core import AdaptiveCW, PriorityBackoff
from repro.experiments import format_table
from repro.mac import DcfTransmitter, Frame, FrameType, Nav
from repro.mac.backoff import LEVEL_NEW_OR_DATA
from repro.phy import BitErrorModel, Channel, PhyTiming
from repro.sim import RandomStreams, Simulator

from conftest import save_artifact

N_STATIONS = 16
SIM_TIME = 5.0
PAYLOAD = 8192


def run_saturated(adaptive: bool) -> dict:
    sim = Simulator()
    timing = PhyTiming()
    streams = RandomStreams(21)
    channel = Channel(sim, BitErrorModel(0.0, streams.get("ch")))
    nav = Nav()
    if adaptive:
        policy = AdaptiveCW(timing, mean_frame_bits=PAYLOAD, update_every=48)
    else:
        policy = PriorityBackoff(alphas=(4, 4, 8))  # fixed paper partition

    delivered = [0]
    txs = []

    def refill(tx, sid):
        frame = Frame(FrameType.DATA, src=sid, dest="ap", payload_bits=PAYLOAD)

        def done(ok):
            if ok:
                delivered[0] += 1
            refill(tx, sid)

        tx.enqueue(frame, LEVEL_NEW_OR_DATA, done)

    for i in range(N_STATIONS):
        sid = f"s{i}"
        tx = DcfTransmitter(
            sim, channel, timing, policy, streams.get(sid), sid, nav
        )
        txs.append(tx)
        refill(tx, sid)
    sim.run(until=SIM_TIME)

    attempts = sum(t.stats.attempts for t in txs)
    failures = sum(t.stats.failures for t in txs)
    return {
        "policy": "adaptive CW" if adaptive else "fixed window",
        "goodput (Mb/s)": delivered[0] * PAYLOAD / SIM_TIME / 1e6,
        "failure rate": failures / attempts if attempts else 0.0,
        "final window (slots)": round(policy.total_window(0)),
    }


def test_ablation_adaptive_cw(benchmark):
    results = benchmark.pedantic(
        lambda: [run_saturated(True), run_saturated(False)],
        rounds=1,
        iterations=1,
    )
    adaptive, fixed = results
    # with 16 saturated stations a 16-slot window collides constantly;
    # the adaptive controller must both widen the window and win goodput
    assert adaptive["failure rate"] < fixed["failure rate"]
    assert adaptive["goodput (Mb/s)"] > fixed["goodput (Mb/s)"]
    assert adaptive["final window (slots)"] > fixed["final window (slots)"]
    save_artifact(
        "ablation_cw.txt",
        format_table(
            results,
            ["policy", "goodput (Mb/s)", "failure rate", "final window (slots)"],
            title=f"Ablation - adaptive CW vs fixed window "
                  f"({N_STATIONS} saturated stations)",
        ),
    )
