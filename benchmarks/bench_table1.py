"""Table I — backoff windows of the priority scheme."""

from repro.experiments import render_table1, table1

from conftest import save_artifact


def test_table1(benchmark):
    rows = benchmark(table1, alphas=(4, 4, 8), beta=0, stages=3)
    by_key = {(r["priority"], r["retry stage"]): r["backoff slots"] for r in rows}
    # the paper's running example: high 0-3 / low 4-7 initially,
    # doubling per retry stage, widest window for the lowest class
    assert by_key[(0, 0)] == "0-3"
    assert by_key[(1, 0)] == "4-7"
    assert by_key[(2, 0)] == "8-15"
    assert by_key[(0, 1)] == "0-7"
    assert by_key[(1, 1)] == "8-15"
    assert by_key[(2, 1)] == "16-31"
    save_artifact("table1.txt", render_table1())
