"""Fig. 11 — average bandwidth utilization vs offered load.

Paper shape: utilization grows with load for every scheme; the
proposed scheme's sits somewhat lower in a highly loaded system (the
price of conservative admission for hard QoS), and the multipoll
variant recovers part of the polling overhead relative to single-poll.
"""

from repro.experiments import fig11, format_table

from conftest import SWEEP_LOADS, by_scheme_load, save_artifact


def test_fig11(benchmark, sweep_rows):
    rows = benchmark(fig11, sweep_rows)
    save_artifact(
        "fig11.txt",
        format_table(
            rows,
            ["scheme", "load", "channel_busy_fraction", "goodput_utilization"],
            title="Fig. 11 - average bandwidth utilization vs offered load",
        ),
    )
    proposed = by_scheme_load(rows, "proposed")
    multipoll = by_scheme_load(rows, "proposed-multipoll")
    conventional = by_scheme_load(rows, "conventional")
    top, bottom = max(SWEEP_LOADS), min(SWEEP_LOADS)

    # utilization grows with load
    for series in (proposed, multipoll, conventional):
        assert (
            series[top]["channel_busy_fraction"]
            > series[bottom]["channel_busy_fraction"]
        )
    # the proposed scheme trades utilization for hard QoS at heavy load
    assert (
        proposed[top]["channel_busy_fraction"]
        < conventional[top]["channel_busy_fraction"]
    )
    # multipoll never does worse than single-poll on goodput
    assert (
        multipoll[top]["goodput_utilization"]
        >= 0.9 * proposed[top]["goodput_utilization"]
    )

