"""Fig. 5 — analytical jitter/delay bounds vs simulated maxima.

Paper shape: the analytic bounds dominate the simulated maxima (they
are worst-case), both families grow with the admitted population, and
the simulated curves track the analytic ones from below.
"""

from repro.experiments import fig5, format_table

from conftest import save_artifact

POPULATIONS = ((1, 1), (2, 1), (3, 2), (4, 3))


def test_fig5(benchmark):
    rows = benchmark.pedantic(
        fig5,
        kwargs=dict(populations=POPULATIONS, seed=1, sim_time=25.0),
        rounds=1,
        iterations=1,
    )
    table = [
        {
            "voice+video sources": f"{r['n_voice']}+{r['n_video']}",
            "jitter bound (ms)": r["analytic_max_jitter"] * 1000,
            "sim max jitter (ms)": r["simulated_max_jitter"] * 1000,
            "delay bound (ms)": r["analytic_max_delay"] * 1000,
            "sim max delay (ms)": r["simulated_max_delay"] * 1000,
        }
        for r in rows
    ]
    save_artifact(
        "fig5.txt",
        format_table(
            table,
            ["voice+video sources", "jitter bound (ms)", "sim max jitter (ms)",
             "delay bound (ms)", "sim max delay (ms)"],
            title="Fig. 5 - analytical bounds vs simulated maxima",
        ),
    )
    for r in rows:
        # bounds are conservative: simulation never exceeds them
        assert r["simulated_max_jitter"] <= r["analytic_max_jitter"]
        assert r["simulated_max_delay"] <= r["analytic_max_delay"]
    # both bound families grow with the population
    assert rows[-1]["analytic_max_jitter"] > rows[0]["analytic_max_jitter"]
    assert rows[-1]["analytic_max_delay"] > rows[0]["analytic_max_delay"]
