"""Fig. 10 — average access delay of data traffic.

Paper shape: the ordering reverses — data is the proposed scheme's
lowest priority class, so at heavy load its data delay exceeds the
conventional protocol's (which treats all traffic alike).
"""

from repro.experiments import fig10, format_table

from conftest import SWEEP_LOADS, by_scheme_load, save_artifact


def test_fig10(benchmark, sweep_rows):
    rows = benchmark(fig10, sweep_rows)
    save_artifact(
        "fig10.txt",
        format_table(
            rows,
            ["scheme", "load", "data_delay_mean", "data_delay_var"],
            title="Fig. 10 - average access delay of data traffic (s, s^2)",
        ),
    )
    proposed = by_scheme_load(rows, "proposed")
    conventional = by_scheme_load(rows, "conventional")
    top = max(SWEEP_LOADS)

    # heavy load: the proposed scheme sacrifices data
    assert (
        proposed[top]["data_delay_mean"]
        > conventional[top]["data_delay_mean"]
    )
    # data delay rises steeply with load under the proposed scheme
    assert (
        proposed[top]["data_delay_mean"]
        > 5 * proposed[min(SWEEP_LOADS)]["data_delay_mean"]
    )

