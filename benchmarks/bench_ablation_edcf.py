"""Ablation — CW differentiation vs AIFS differentiation.

The paper justifies partitioning the contention window rather than the
IFS by Xiao's observation that "the different initial CW size has both
the function of reducing collisions and providing priorities, whereas
the arbitration IFS ... can not reduce collisions."  We saturate a
two-class population under both EDCF-style policies with matched
average aggressiveness and compare total goodput and failure rate.
"""

from repro.core import AifsDifferentiation, CwDifferentiation
from repro.experiments import format_table
from repro.mac import DcfTransmitter, Frame, FrameType, Nav
from repro.phy import BitErrorModel, Channel, PhyTiming
from repro.sim import RandomStreams, Simulator

from conftest import save_artifact

N_HIGH = 4
N_LOW = 12
SIM_TIME = 4.0
PAYLOAD = 8192


def run_saturated(policy_name: str) -> dict:
    sim = Simulator()
    timing = PhyTiming()
    streams = RandomStreams(17)
    channel = Channel(sim, BitErrorModel(0.0, streams.get("ch")))
    nav = Nav()
    if policy_name == "cw-differentiation":
        policy = CwDifferentiation(cw_mins=(16, 64))
    else:
        # matched windows; priority via 4 extra AIFS slots for class 1
        policy = AifsDifferentiation(timing, aifs_slots=(0, 4), cw_min=32)

    delivered = {0: 0, 1: 0}
    txs = []

    def refill(tx, sid, level):
        frame = Frame(FrameType.DATA, src=sid, dest="ap", payload_bits=PAYLOAD)

        def done(ok):
            if ok:
                delivered[level] += 1
            refill(tx, sid, level)

        tx.enqueue(frame, level, done)

    plan = [(f"hi{i}", 0) for i in range(N_HIGH)] + [
        (f"lo{i}", 1) for i in range(N_LOW)
    ]
    for sid, level in plan:
        tx = DcfTransmitter(
            sim, channel, timing, policy, streams.get(sid), sid, nav
        )
        txs.append(tx)
        refill(tx, sid, level)
    sim.run(until=SIM_TIME)

    attempts = sum(t.stats.attempts for t in txs)
    failures = sum(t.stats.failures for t in txs)
    total = delivered[0] + delivered[1]
    return {
        "policy": policy_name,
        "total goodput (Mb/s)": total * PAYLOAD / SIM_TIME / 1e6,
        "failure rate": failures / attempts if attempts else 0.0,
        "high-class share": delivered[0] / total if total else 0.0,
    }


def test_ablation_cw_vs_aifs(benchmark):
    results = benchmark.pedantic(
        lambda: [run_saturated("cw-differentiation"),
                 run_saturated("aifs-differentiation")],
        rounds=1,
        iterations=1,
    )
    save_artifact(
        "ablation_edcf.txt",
        format_table(
            results,
            ["policy", "total goodput (Mb/s)", "failure rate",
             "high-class share"],
            title="Ablation - CW vs AIFS differentiation "
                  f"({N_HIGH} high / {N_LOW} low saturated stations)",
        ),
    )
    cw, aifs = results
    # both provide priority...
    per_station_parity = (N_HIGH / (N_HIGH + N_LOW))
    assert cw["high-class share"] > per_station_parity
    assert aifs["high-class share"] > per_station_parity
    # ...but only CW differentiation also thins collisions: it must not
    # lose on total goodput
    assert cw["total goodput (Mb/s)"] >= 0.95 * aifs["total goodput (Mb/s)"]
