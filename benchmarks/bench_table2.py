"""Table II — default simulation attribute values."""

from repro.experiments import render_table2, table2

from conftest import save_artifact


def test_table2(benchmark):
    rows = benchmark(table2)
    params = {r["parameter"] for r in rows}
    # everything the paper's text states explicitly must be present
    for required in (
        "channel rate",
        "voice talk spurt (on)",
        "voice silence (off)",
        "video delay bound D",
        "data MSDU length",
        "superframe (conventional)",
        "CFP maximum (conventional)",
        "AR(1) coefficients",
    ):
        assert required in params
    save_artifact("table2.txt", render_table2())
