#!/usr/bin/env python
"""Perf-regression gate, runnable straight from a checkout.

Thin wrapper over ``repro.bench.gate.main`` (the same code behind
``python -m repro bench``) so CI and local runs share one entrypoint::

    PYTHONPATH=src python benchmarks/perf_gate.py --tolerance 0.25
    PYTHONPATH=src python benchmarks/perf_gate.py --update   # new baseline

The baseline lives at the repository root (``BENCH_KERNEL.json``); this
wrapper resolves it relative to its own location so the gate can be
invoked from any working directory.  Exit code 1 means a regression.
"""

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.bench import DEFAULT_BASELINE, main

    argv = sys.argv[1:]
    if "--baseline" not in argv:
        argv = ["--baseline", str(REPO_ROOT / DEFAULT_BASELINE)] + argv
    raise SystemExit(main(argv))
