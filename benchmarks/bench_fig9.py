"""Fig. 9 — average access delay of video traffic (+ variance).

Paper shape: same ordering as voice — the conventional protocol's
video delay sits near its (fixed-superframe) structural latency and
far above the proposed scheme's token-pipelined service.
"""

from repro.experiments import fig9, format_table

from conftest import SWEEP_LOADS, by_scheme_load, save_artifact


def test_fig9(benchmark, sweep_rows):
    rows = benchmark(fig9, sweep_rows)
    save_artifact(
        "fig9.txt",
        format_table(
            rows,
            ["scheme", "load", "video_delay_mean", "video_delay_var"],
            title="Fig. 9 - average access delay of video traffic (s, s^2)",
        ),
    )
    proposed = by_scheme_load(rows, "proposed")
    multipoll = by_scheme_load(rows, "proposed-multipoll")
    conventional = by_scheme_load(rows, "conventional")
    top = max(SWEEP_LOADS)

    for load in SWEEP_LOADS:
        assert (
            conventional[load]["video_delay_mean"]
            > proposed[load]["video_delay_mean"]
        )
        assert (
            conventional[load]["video_delay_mean"]
            > multipoll[load]["video_delay_mean"]
        )
    # proposed video delay respects the 50 ms budget with a wide margin
    assert proposed[top]["video_delay_mean"] < 0.015

