"""Fig. 7 — new-call blocking probability vs offered load.

Paper shape: the tradeoff — at heavy load the proposed scheme blocks
*more* new calls than the conventional protocol (its admission is
deliberately conservative to keep the admitted calls' hard QoS and
protect handoffs).
"""

from repro.experiments import fig7, format_table

from conftest import SWEEP_LOADS, by_scheme_load, save_artifact


def test_fig7(benchmark, sweep_rows):
    rows = benchmark(fig7, sweep_rows)
    save_artifact(
        "fig7.txt",
        format_table(
            rows,
            ["scheme", "load", "blocking_probability", "blocking_probability_std"],
            title="Fig. 7 - new-call blocking probability vs offered load",
        ),
    )
    proposed = by_scheme_load(rows, "proposed")
    conventional = by_scheme_load(rows, "conventional")
    top = max(SWEEP_LOADS)

    # at heavy load the proposed scheme is the conservative one
    assert (
        proposed[top]["blocking_probability"]
        > conventional[top]["blocking_probability"]
    )
    # blocking grows with load for both schemes
    assert (
        conventional[top]["blocking_probability"]
        >= conventional[min(SWEEP_LOADS)]["blocking_probability"]
    )
    assert (
        proposed[top]["blocking_probability"]
        >= proposed[min(SWEEP_LOADS)]["blocking_probability"] - 0.05
    )

