"""Shared machinery for the figure-regeneration benchmarks.

The paper's Figs. 6-11 are all projections of one scheme x load sweep,
so the sweep runs once per benchmark session (session-scoped fixture)
and each figure's bench projects, validates and renders its own series.
Rendered tables are also written to ``benchmarks/results/`` so the
regenerated figures survive pytest's output capture.
"""

import os
import pathlib

import pytest

from repro.exec import ExecutorConfig, SweepExecutor
from repro.experiments import BENCH_LOADS, EVALUATION_SEEDS, run_sweep

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: the scaled-down evaluation grid (shapes, not absolute magnitudes);
#: loads/seeds come from the canonical definitions in
#: repro.experiments.config so the grids can't drift apart
SWEEP_SCHEMES = ("proposed", "proposed-multipoll", "conventional")
SWEEP_LOADS = BENCH_LOADS
SWEEP_SEEDS = EVALUATION_SEEDS
SWEEP_SIM_TIME = 80.0
SWEEP_WARMUP = 8.0

#: process-pool size for the shared sweep; workers=1 and workers=N
#: produce identical rows, so this only changes wall time
SWEEP_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


@pytest.fixture(scope="session")
def sweep_rows():
    """Run the shared evaluation sweep once per benchmark session."""
    executor = SweepExecutor(ExecutorConfig(workers=SWEEP_WORKERS))
    return run_sweep(
        SWEEP_SCHEMES,
        loads=SWEEP_LOADS,
        seeds=SWEEP_SEEDS,
        sim_time=SWEEP_SIM_TIME,
        warmup=SWEEP_WARMUP,
        executor=executor,
    )


def save_artifact(name: str, text: str) -> None:
    """Persist a rendered table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")
    print(f"\n{text}\n[saved to benchmarks/results/{name}]")


def by_scheme_load(rows, scheme):
    """{load: row} for one scheme from an averaged figure table."""
    return {r["load"]: r for r in rows if r["scheme"] == scheme}
