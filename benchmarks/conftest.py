"""Shared machinery for the figure-regeneration benchmarks.

The paper's Figs. 6-11 are all projections of one scheme x load sweep,
so the sweep runs once per benchmark session (session-scoped fixture)
and each figure's bench projects, validates and renders its own series.
Rendered tables are also written to ``benchmarks/results/`` so the
regenerated figures survive pytest's output capture.
"""

import pathlib

import pytest

from repro.experiments import run_sweep

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: the scaled-down evaluation grid (shapes, not absolute magnitudes)
SWEEP_SCHEMES = ("proposed", "proposed-multipoll", "conventional")
SWEEP_LOADS = (0.5, 1.5, 3.0)
SWEEP_SEEDS = (1, 2, 3)
SWEEP_SIM_TIME = 80.0
SWEEP_WARMUP = 8.0


@pytest.fixture(scope="session")
def sweep_rows():
    """Run the shared evaluation sweep once per benchmark session."""
    return run_sweep(
        SWEEP_SCHEMES,
        loads=SWEEP_LOADS,
        seeds=SWEEP_SEEDS,
        sim_time=SWEEP_SIM_TIME,
        warmup=SWEEP_WARMUP,
    )


def save_artifact(name: str, text: str) -> None:
    """Persist a rendered table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")
    print(f"\n{text}\n[saved to benchmarks/results/{name}]")


def by_scheme_load(rows, scheme):
    """{load: row} for one scheme from an averaged figure table."""
    return {r["load"]: r for r in rows if r["scheme"] == scheme}
