"""Serial-vs-parallel sweep: the execution subsystem's speedup bench.

Runs the same scheme x load x seed grid twice through
``SweepExecutor`` — ``workers=1`` (serial in-process) and
``workers=4`` (process pool) — and reports the wall-clock speedup.
Correctness gate: the two runs must produce byte-identical
(order-normalized) result rows.  The >= 2x speedup assertion only
applies where it is physically possible (>= 4 CPU cores); on smaller
machines the bench still verifies identity and records the measured
ratio.
"""

import json
import os
import time

from repro.bench import merge_section
from repro.exec import ExecutorConfig, SweepExecutor
from repro.experiments import format_table, sweep_grid

from conftest import RESULTS_DIR, save_artifact

GRID_SCHEMES = ("proposed", "conventional")
GRID_LOADS = (0.5, 3.0)
GRID_SEEDS = (1, 2)
GRID_SIM_TIME = 60.0
GRID_WARMUP = 6.0
PARALLEL_WORKERS = 4
SCHEDULE = "cost"


def _timed_run(workers: int):
    executor = SweepExecutor(
        ExecutorConfig(workers=workers, schedule=SCHEDULE)
    )
    grid = sweep_grid(
        GRID_SCHEMES, GRID_LOADS, GRID_SEEDS, GRID_SIM_TIME, GRID_WARMUP
    )
    start = time.perf_counter()
    rows = executor.run(grid)
    wall = time.perf_counter() - start
    return rows, wall, executor.summary(), executor.telemetry.bench_entry(wall)


def test_parallel_sweep_speedup():
    serial_rows, serial_wall, serial_summary, serial_entry = _timed_run(
        workers=1
    )
    parallel_rows, parallel_wall, parallel_summary, parallel_entry = (
        _timed_run(workers=PARALLEL_WORKERS)
    )

    # byte-identical rows: same grid, same seeds, same bytes — the
    # process pool must not perturb a single result
    canon = lambda rows: [json.dumps(r, sort_keys=True) for r in rows]  # noqa: E731
    assert canon(serial_rows) == canon(parallel_rows)

    speedup = serial_wall / parallel_wall if parallel_wall > 0 else float("inf")
    cores = os.cpu_count() or 1
    save_artifact(
        "parallel_sweep.txt",
        format_table(
            [
                {
                    "mode": "serial (workers=1)",
                    "wall (s)": serial_wall,
                    "utilization": serial_summary["worker_utilization"],
                    "sim events": serial_summary["sim_events"],
                },
                {
                    "mode": f"parallel (workers={PARALLEL_WORKERS})",
                    "wall (s)": parallel_wall,
                    "utilization": parallel_summary["worker_utilization"],
                    "sim events": parallel_summary["sim_events"],
                },
                {"mode": f"speedup ({cores} cores)", "wall (s)": speedup},
            ],
            ["mode", "wall (s)", "utilization", "sim events"],
            title=(
                f"Parallel sweep - {len(serial_rows)} points, "
                "identical rows, serial vs process pool"
            ),
        ),
    )

    # land the measured numbers in the same JSON schema the perf gate
    # writes (full-size grid, vs the gate's scaled-down one)
    RESULTS_DIR.mkdir(exist_ok=True)
    merge_section(
        RESULTS_DIR / "bench-report.json",
        "parallel_sweep",
        {
            "points": len(serial_rows),
            "schedule": SCHEDULE,
            "cpu_cores": cores,
            "rows_identical": True,
            "serial": serial_entry,
            "parallel": parallel_entry,
            "speedup": round(speedup, 2),
        },
    )

    assert len(serial_rows) == (
        len(GRID_SCHEMES) * len(GRID_LOADS) * len(GRID_SEEDS)
    )
    assert serial_summary["executed"] == len(serial_rows)
    # both runs simulated the exact same discrete-event work
    assert serial_summary["sim_events"] == parallel_summary["sim_events"] > 0

    if cores >= PARALLEL_WORKERS:
        # with >= 4 cores the pool must halve the wall clock at least
        assert speedup >= 2.0, f"speedup {speedup:.2f}x < 2x on {cores} cores"
