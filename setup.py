"""Setup shim.

The metadata lives in pyproject.toml; this file exists so that
``python setup.py develop`` works on offline machines that lack the
``wheel`` package required by pip's PEP 660 editable-install path.
"""

from setuptools import setup

setup()
